/**
 * @file
 * Tests for the HLS stand-in: the resource estimator and the parallel
 * synthesis driver.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hls/estimator.hh"
#include "hls/synthesis.hh"

namespace tapacs::hls
{
namespace
{

TEST(Estimator, EmptyTaskHasBaseCostOnly)
{
    TaskIr t;
    t.name = "empty";
    t.fsmStates = 4;
    const SynthesisResult r = estimateTask(t);
    EXPECT_GT(r.area[ResourceKind::Lut], 0.0);
    EXPECT_GT(r.area[ResourceKind::Ff], 0.0);
    EXPECT_DOUBLE_EQ(r.area[ResourceKind::Dsp], 0.0);
    EXPECT_DOUBLE_EQ(r.area[ResourceKind::Bram], 0.0);
    EXPECT_EQ(r.taskName, "empty");
}

TEST(Estimator, FpUnitsConsumeDsps)
{
    TaskIr t;
    t.name = "fp";
    t.fp32AddUnits = 4; // 2 DSP each
    t.fp32MulUnits = 2; // 3 DSP each
    const SynthesisResult r = estimateTask(t);
    EXPECT_DOUBLE_EQ(r.area[ResourceKind::Dsp], 4 * 2 + 2 * 3);
}

TEST(Estimator, AreaIsMonotoneInUnits)
{
    TaskIr small;
    small.name = "s";
    small.fp32AddUnits = 2;
    TaskIr big = small;
    big.fp32AddUnits = 8;
    big.intAluUnits = 4;
    const auto rs = estimateTask(small).area;
    const auto rb = estimateTask(big).area;
    EXPECT_TRUE(rs.fitsWithin(rb));
    EXPECT_LT(rs[ResourceKind::Lut], rb[ResourceKind::Lut]);
}

TEST(Estimator, BufferGoesToBramByDefault)
{
    TaskIr t;
    t.name = "buf";
    t.localBufferBytes = 32_KiB;
    t.bufferBanks = 1;
    const SynthesisResult r = estimateTask(t);
    EXPECT_GT(r.area[ResourceKind::Bram], 0.0);
    EXPECT_DOUBLE_EQ(r.area[ResourceKind::Uram], 0.0);
}

TEST(Estimator, LargeBufferPrefersUram)
{
    TaskIr t;
    t.name = "ubuf";
    t.localBufferBytes = 256_KiB;
    t.preferUram = true;
    const SynthesisResult r = estimateTask(t);
    EXPECT_GT(r.area[ResourceKind::Uram], 0.0);
    EXPECT_DOUBLE_EQ(r.area[ResourceKind::Bram], 0.0);
}

TEST(Estimator, SmallBufferIgnoresUramPreference)
{
    TaskIr t;
    t.name = "small";
    t.localBufferBytes = 8_KiB;
    t.preferUram = true;
    const SynthesisResult r = estimateTask(t);
    EXPECT_DOUBLE_EQ(r.area[ResourceKind::Uram], 0.0);
    EXPECT_GT(r.area[ResourceKind::Bram], 0.0);
}

TEST(Estimator, BankingRoundsUpPerBank)
{
    // 10 KiB in 8 banks: each bank is 1.25 KiB -> 1 BRAM18 each.
    EXPECT_DOUBLE_EQ(bramBlocksFor(10_KiB, 8), 8.0);
    // Same bytes unbanked: ceil(10240 / 2304) = 5.
    EXPECT_DOUBLE_EQ(bramBlocksFor(10_KiB, 1), 5.0);
    EXPECT_DOUBLE_EQ(bramBlocksFor(0, 4), 0.0);
    EXPECT_DOUBLE_EQ(uramBlocksFor(72_KiB, 1), 2.0);
}

TEST(Estimator, MemPortCostScalesWithWidthAndBuffer)
{
    TaskIr narrow;
    narrow.name = "n";
    narrow.addMemPort("m0", 256, 32_KiB);
    TaskIr wide;
    wide.name = "w";
    wide.addMemPort("m0", 512, 128_KiB);
    const auto rn = estimateTask(narrow).area;
    const auto rw = estimateTask(wide).area;
    EXPECT_LT(rn[ResourceKind::Lut], rw[ResourceKind::Lut]);
    // A 32 KiB burst buffer stays in BRAM (~15 blocks); the 128 KiB
    // buffer of the KNN scaled configuration is bound to URAM so the
    // HBM die is not exhausted.
    EXPECT_NEAR(rn[ResourceKind::Bram], 15.0, 1.0);
    EXPECT_DOUBLE_EQ(rn[ResourceKind::Uram], 0.0);
    EXPECT_DOUBLE_EQ(rw[ResourceKind::Uram], 4.0);
    EXPECT_LT(rw[ResourceKind::Bram], rn[ResourceKind::Bram]);
}

TEST(Estimator, FmaxCeilingDropsWithComplexity)
{
    TaskIr simple;
    simple.name = "s";
    simple.intAluUnits = 1;
    TaskIr complex_task;
    complex_task.name = "c";
    complex_task.fp32AddUnits = 64;
    complex_task.fp32MulUnits = 64;
    complex_task.addMemPort("m0", 512, 8_KiB);
    EXPECT_GT(estimateTask(simple).fmaxCeiling,
              estimateTask(complex_task).fmaxCeiling);
    // Floor at 200 MHz.
    TaskIr monster;
    monster.name = "m";
    monster.fp32AddUnits = 100000;
    EXPECT_GE(estimateTask(monster).fmaxCeiling, 200.0e6);
}

TEST(Estimator, PipelineDepthGrowsWithFpChain)
{
    TaskIr no_fp;
    no_fp.name = "i";
    no_fp.intAluUnits = 4;
    TaskIr fp;
    fp.name = "f";
    fp.fp32AddUnits = 8;
    EXPECT_LT(estimateTask(no_fp).pipelineDepth,
              estimateTask(fp).pipelineDepth);
}

TEST(Synthesis, ParallelMatchesSerial)
{
    std::vector<TaskIr> tasks;
    for (int i = 0; i < 20; ++i) {
        TaskIr t;
        t.name = strprintf("t%d", i);
        t.fp32AddUnits = i;
        t.localBufferBytes = static_cast<Bytes>(i) * 1024;
        tasks.push_back(t);
    }
    const ProgramSynthesis serial = synthesizeAll(tasks, 1);
    const ProgramSynthesis parallel = synthesizeAll(tasks, 4);
    ASSERT_EQ(serial.tasks.size(), parallel.tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_EQ(serial.tasks[i].taskName, parallel.tasks[i].taskName);
        EXPECT_TRUE(serial.tasks[i].area == parallel.tasks[i].area);
    }
    EXPECT_EQ(serial.threadsUsed, 1);
    EXPECT_GE(serial.elapsedSeconds, 0.0);
}

TEST(Synthesis, FindByName)
{
    std::vector<TaskIr> tasks(2);
    tasks[0].name = "alpha";
    tasks[1].name = "beta";
    const ProgramSynthesis synth = synthesizeAll(tasks);
    EXPECT_NE(synth.find("alpha"), nullptr);
    EXPECT_NE(synth.find("beta"), nullptr);
    EXPECT_EQ(synth.find("gamma"), nullptr);
}

TEST(Synthesis, ApplyStampsAreasOntoGraph)
{
    TaskGraph g("apply");
    g.addVertex("alpha", ResourceVector{});
    g.addVertex("beta", ResourceVector{});
    std::vector<TaskIr> tasks(2);
    tasks[0].name = "alpha";
    tasks[0].fp32AddUnits = 4;
    tasks[1].name = "beta";
    const ProgramSynthesis synth = synthesizeAll(tasks);
    applySynthesis(g, synth);
    EXPECT_GT(g.vertex(0).area[ResourceKind::Dsp], 0.0);
    EXPECT_TRUE(g.vertex(0).area == synth.tasks[0].area);
}

TEST(SynthesisDeath, ApplyRejectsUnknownTask)
{
    TaskGraph g("missing");
    g.addVertex("alpha", ResourceVector{});
    std::vector<TaskIr> tasks(1);
    tasks[0].name = "not-in-graph";
    const ProgramSynthesis synth = synthesizeAll(tasks);
    EXPECT_DEATH(applySynthesis(g, synth), "no vertex");
}

} // namespace
} // namespace tapacs::hls
