/**
 * @file
 * Tests for the observability subsystem: the trace recorder (spans,
 * instants, counters, Chrome JSON export, per-thread tracks), the
 * metrics registry, and the profiling hooks wired through the compile
 * flow (seven phase spans, worker tracks) and the solver
 * (deterministic SolverStats aggregation).
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/stencil.hh"
#include "common/thread_pool.hh"
#include "compiler/compiler.hh"
#include "floorplan/intra_fpga.hh"
#include "ilp/solver.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace tapacs
{
namespace
{

/** Disable + clear the tracer on entry and exit so suites that run
 *  before/after (and a TAPACS_TRACE inherited from the environment)
 *  cannot leak events into each other. */
struct TracerSandbox
{
    TracerSandbox()
    {
        obs::Tracer::instance().disable();
        obs::Tracer::instance().clear();
    }
    ~TracerSandbox()
    {
        obs::Tracer::instance().disable();
        obs::Tracer::instance().clear();
    }
};

int
countOccurrences(const std::string &haystack, const std::string &needle)
{
    int n = 0;
    for (size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++n;
    return n;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Trace, DisabledTracerRecordsNothing)
{
    TracerSandbox sandbox;
    obs::Tracer &t = obs::Tracer::instance();
    ASSERT_FALSE(t.enabled());
    {
        obs::TraceSpan span("test", "ignored");
        EXPECT_FALSE(span.active());
        span.arg("k", 1.0);
    }
    t.instant("test", "ignored");
    t.counter("test", "ignored", 1.0);
    EXPECT_EQ(t.eventCount(), 0u);
}

TEST(Trace, SpanInstantCounterRoundTrip)
{
    TracerSandbox sandbox;
    obs::Tracer &t = obs::Tracer::instance();
    t.enable();
    {
        obs::TraceSpan span("cat", "outer");
        ASSERT_TRUE(span.active());
        span.arg("count", static_cast<std::int64_t>(42))
            .arg("ratio", 0.5)
            .arg("label", std::string("a\"b"));
    }
    t.instant("cat", "tick");
    t.counter("cat", "queue_depth", 3.0);
    t.disable();
    EXPECT_EQ(t.eventCount(), 3u);

    const std::string json = t.toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"count\":42"), std::string::npos);
    EXPECT_NE(json.find("a\\\"b"), std::string::npos); // escaped arg
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    // Every buffer announces its thread name.
    EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(Trace, SpanOpenAcrossDisableIsDropped)
{
    TracerSandbox sandbox;
    obs::Tracer &t = obs::Tracer::instance();
    t.enable();
    {
        obs::TraceSpan span("cat", "crossing");
        t.disable(); // writer raced with shutdown
    }
    EXPECT_EQ(t.eventCount(), 0u);
}

TEST(Trace, WriteProducesLoadableFile)
{
    TracerSandbox sandbox;
    obs::Tracer &t = obs::Tracer::instance();
    t.enable();
    { obs::TraceSpan span("cat", "solo"); }
    t.disable();

    const std::string path = ::testing::TempDir() + "obs_write.json";
    ASSERT_TRUE(t.write(path));
    const std::string json = slurp(path);
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"solo\""), std::string::npos);
    EXPECT_FALSE(t.write("/nonexistent-dir/trace.json"));
    std::remove(path.c_str());
}

TEST(Trace, PoolWorkersGetDistinctTracks)
{
    if (ThreadPool::defaultPool().size() < 2)
        GTEST_SKIP() << "needs >= 2 pool workers (set TAPACS_THREADS)";
    TracerSandbox sandbox;
    obs::Tracer &t = obs::Tracer::instance();
    t.enable();
    // Rendezvous: all three tasks must be in flight at once, so at
    // least two land on distinct pool workers (the caller's helping
    // hand in TaskGroup::wait can absorb at most one).
    ThreadPool &pool = ThreadPool::defaultPool();
    Latch latch(3);
    TaskGroup group(pool);
    for (int i = 0; i < 3; ++i) {
        group.run([&latch, i] {
            obs::TraceSpan span("test",
                                "rendezvous" + std::to_string(i));
            latch.countDown();
            latch.wait();
        });
    }
    group.wait();
    t.disable();
    const std::string json = t.toJson();
    EXPECT_GE(countOccurrences(json, "pool-worker-"), 2);
}

TEST(Metrics, CounterGaugeHistogramBasics)
{
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("tapacs.test.count");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5);
    // Same name resolves to the same node.
    EXPECT_EQ(&reg.counter("tapacs.test.count"), &c);

    obs::Gauge &g = reg.gauge("tapacs.test.level");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);

    obs::Histogram &h = reg.histogram("tapacs.test.lat", {1.0, 10.0});
    h.observe(0.5);  // bucket 0
    h.observe(1.0);  // bucket 0 (<= bound)
    h.observe(5.0);  // bucket 1
    h.observe(99.0); // overflow
    EXPECT_EQ(h.count(), 4);
    EXPECT_DOUBLE_EQ(h.sum(), 105.5);
    EXPECT_EQ(h.bucketCounts(), (std::vector<std::int64_t>{2, 1, 1}));
}

TEST(Metrics, SnapshotAndRender)
{
    obs::MetricsRegistry reg;
    reg.counter("tapacs.test.count").add(7);
    reg.gauge("tapacs.test.level").set(1.25);
    reg.histogram("tapacs.test.lat", {1.0}).observe(3.0);

    obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_TRUE(snap.hasCounter("tapacs.test.count"));
    ASSERT_TRUE(snap.hasGauge("tapacs.test.level"));
    EXPECT_FALSE(snap.hasCounter("tapacs.test.level")); // wrong kind
    EXPECT_EQ(snap.counterValue("tapacs.test.count"), 7);
    EXPECT_DOUBLE_EQ(snap.gaugeValue("tapacs.test.level"), 1.25);
    ASSERT_EQ(snap.histograms.count("tapacs.test.lat"), 1u);
    EXPECT_EQ(snap.histograms.at("tapacs.test.lat").count, 1);

    const std::string table = snap.renderTable();
    EXPECT_NE(table.find("tapacs.test.count"), std::string::npos);
    const std::string json = snap.renderJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"tapacs.test.level\":1.25"),
              std::string::npos);

    reg.clear();
    obs::MetricsSnapshot zeroed = reg.snapshot();
    EXPECT_EQ(zeroed.counterValue("tapacs.test.count"), 0);
    EXPECT_DOUBLE_EQ(zeroed.gaugeValue("tapacs.test.level"), 0.0);
    EXPECT_EQ(zeroed.histograms.at("tapacs.test.lat").count, 0);
}

TEST(Metrics, HandlesAreThreadSafe)
{
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("tapacs.test.mt");
    obs::Histogram &h = reg.histogram("tapacs.test.mt_lat", {0.5});
    ThreadPool::defaultPool().parallelFor(0, 10'000,
                                          [&](std::int64_t i) {
                                              c.add();
                                              h.observe(i % 2 ? 1.0
                                                              : 0.25);
                                          });
    EXPECT_EQ(c.value(), 10'000);
    EXPECT_EQ(h.count(), 10'000);
    EXPECT_EQ(h.bucketCounts()[0] + h.bucketCounts()[1], 10'000);
}

/**
 * Acceptance: a full-flow stencil compile with tracing on produces a
 * Chrome-trace JSON containing spans for all seven compiler phases
 * plus at least two distinct worker-thread tracks.
 */
TEST(Trace, FullFlowCompileEmitsSevenPhasesAndWorkerTracks)
{
    TracerSandbox sandbox;
    apps::AppDesign app =
        apps::buildStencil(apps::StencilConfig::scaled(64, 2));
    Cluster cluster = makePaperTestbed(2);
    CompileOptions options;
    options.mode = CompileMode::TapaCs;
    options.numFpgas = 2;
    options.numThreads = 4;
    const std::string path = ::testing::TempDir() + "obs_compile.json";
    options.trace = path;

    CompileResult result =
        compileProgram(app.graph, app.tasks, cluster, options);
    ASSERT_TRUE(result.routable) << result.failureReason;
    // The guard disables tracing once the compile finishes.
    EXPECT_FALSE(obs::Tracer::instance().enabled());

    const std::string json = slurp(path);
    for (const char *phase :
         {"phase1.task_graph", "phase2.synthesis", "phase3.inter_fpga",
          "phase4.comm_logic", "phase5.intra_fpga",
          "phase6.pipelining", "phase7.bitstream"})
        EXPECT_NE(json.find(phase), std::string::npos) << phase;
    // Per-device intra-FPGA and HBM-binding spans run on pool
    // workers, so the trace must carry >= 2 worker tracks.
    if (ThreadPool::defaultPool().size() >= 2) {
        EXPECT_GE(countOccurrences(json, "pool-worker-"), 2);
    }
    // Solver spans carry the per-worker search counters.
    EXPECT_NE(json.find("ilp.solve"), std::string::npos);
    EXPECT_NE(json.find("lp_iterations"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Solver, StatsCountLpIterationsAndIncumbents)
{
    // A small knapsack forces branching, so every stat must move.
    ilp::Model m;
    ilp::LinExpr cap, obj;
    for (int i = 0; i < 12; ++i) {
        const ilp::VarId v = m.addBinary();
        cap.add(v, 1.0 + (i % 5));
        obj.add(v, -(1.0 + ((7 * i) % 11)));
    }
    m.addConstraint(std::move(cap), ilp::Sense::LessEqual, 14.0);
    m.setObjective(std::move(obj));

    for (int threads : {1, 4}) {
        ilp::SolverOptions opt;
        opt.numThreads = threads;
        ilp::BranchBoundSolver solver(opt);
        ilp::Solution s = solver.solve(m);
        ASSERT_TRUE(s.hasSolution());
        const ilp::SolverStats &st = solver.stats();
        EXPECT_GT(st.lpSolves, 0) << threads;
        EXPECT_GE(st.lpIterations, st.lpSolves) << threads;
        EXPECT_GT(st.incumbentUpdates, 0) << threads;
    }
}

/**
 * Regression (deterministic aggregation): the level-2 pass folds
 * per-device outcomes in device order and keeps each bisection ILP
 * serial, so the aggregate SolverStats must be bit-identical run to
 * run and across outer thread counts.
 */
TEST(Floorplan, IntraFpgaStatsDeterministicAcrossThreads)
{
    apps::AppDesign app =
        apps::buildStencil(apps::StencilConfig::scaled(64, 2));
    Cluster cluster = makePaperTestbed(2);
    DevicePartition part;
    for (VertexId v = 0; v < app.graph.numVertices(); ++v)
        part.deviceOf.push_back(v % 2);

    auto run = [&](int threads) {
        IntraFpgaOptions opt;
        opt.numThreads = threads;
        // Rule out time-limit nondeterminism: node budget binds first.
        opt.solver.timeLimitSeconds = 1.0e9;
        return floorplanIntraFpga(app.graph, cluster, part, opt);
    };

    const IntraFpgaResult base = run(1);
    for (int i = 0; i < 2; ++i) {
        const IntraFpgaResult mt = run(4);
        EXPECT_EQ(mt.solverStats.nodesExplored,
                  base.solverStats.nodesExplored);
        EXPECT_EQ(mt.solverStats.lpSolves, base.solverStats.lpSolves);
        EXPECT_EQ(mt.solverStats.lpIterations,
                  base.solverStats.lpIterations);
        EXPECT_EQ(mt.solverStats.incumbentUpdates,
                  base.solverStats.incumbentUpdates);
        EXPECT_EQ(mt.allIlpOptimal, base.allIlpOptimal);
        EXPECT_EQ(mt.placement.slotOf.size(),
                  base.placement.slotOf.size());
        for (size_t v = 0; v < base.placement.slotOf.size(); ++v) {
            EXPECT_EQ(mt.placement.slotOf[v].col,
                      base.placement.slotOf[v].col);
            EXPECT_EQ(mt.placement.slotOf[v].row,
                      base.placement.slotOf[v].row);
        }
    }
}

} // namespace
} // namespace tapacs

/**
 * Custom main: the worker-track tests need a multi-worker default
 * pool even on single-core CI boxes, so seed TAPACS_THREADS before
 * anything instantiates the pool. An explicit user setting wins.
 */
int
main(int argc, char **argv)
{
    ::setenv("TAPACS_THREADS", "4", /*overwrite=*/0);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
