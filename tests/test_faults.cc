/**
 * @file
 * Fault-injection and recovery tests: the FaultPlan/FaultInjector
 * model, the reliable transport's retry policy, graceful degradation
 * of the simulator under scripted fault scenarios (link degrade, flap
 * storm, mid-run FPGA death), byte-exact replay of seeded scenarios,
 * and the failure-aware replan() flow.
 */

#include <string>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "compiler/compiler.hh"
#include "network/faults.hh"
#include "network/protocols.hh"
#include "obs/metrics.hh"
#include "sim/dataflow_sim.hh"
#include "sim/report.hh"

namespace tapacs
{
namespace
{

using sim::SimOptions;
using sim::SimResult;

// ---------------------------------------------------------------
// FaultPlan / FaultInjector model
// ---------------------------------------------------------------

TEST(FaultPlan, BuilderRecordsEvents)
{
    FaultPlan plan(42);
    plan.degradeLink(0, 1, 1.0, 0.5)
        .jitterLink(1, 2, 0.0, 1e-6)
        .dropLink(0, 1, 0.0, 0.05)
        .flapLink(2, 3, 1.0, 2.0)
        .killDevice(3, 5.0);
    EXPECT_EQ(plan.seed(), 42u);
    EXPECT_EQ(plan.events().size(), 5u);
    EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanDeath, InvalidMagnitudesRejected)
{
    FaultPlan plan;
    EXPECT_DEATH(plan.degradeLink(0, 1, 0.0, 0.0), "factor");
    EXPECT_DEATH(plan.dropLink(0, 1, 0.0, 1.5), "probability");
    EXPECT_DEATH(plan.flapLink(0, 1, 2.0, 1.0), "flap");
}

TEST(FaultInjector, LinkConditionWindowsAndCombination)
{
    FaultPlan plan(7);
    plan.degradeLink(0, 1, 1.0, 0.5, 3.0)
        .degradeLink(1, 0, 2.0, 0.25, 4.0) // overlapping, worse
        .jitterLink(0, 1, 0.0, 2e-6)
        .flapLink(0, 1, 5.0, 6.0);
    FaultInjector inj(plan, 4);

    // Before onset: healthy except the always-on jitter.
    LinkCondition c = inj.linkAt(0, 1, 0.5);
    EXPECT_TRUE(c.up);
    EXPECT_DOUBLE_EQ(c.bandwidthFactor, 1.0);
    EXPECT_DOUBLE_EQ(c.maxJitter, 2e-6);

    // Overlap window: conservative combination (min factor).
    c = inj.linkAt(1, 0, 2.5); // endpoint order must not matter
    EXPECT_DOUBLE_EQ(c.bandwidthFactor, 0.25);

    // Flap window: down, with a recovery time.
    c = inj.linkAt(0, 1, 5.5);
    EXPECT_FALSE(c.up);
    EXPECT_DOUBLE_EQ(c.upAt, 6.0);

    // After recovery and every degrade window: healthy again.
    c = inj.linkAt(0, 1, 7.0);
    EXPECT_TRUE(c.up);
    EXPECT_DOUBLE_EQ(c.bandwidthFactor, 1.0);

    // Unrelated link never affected.
    c = inj.linkAt(2, 3, 2.5);
    EXPECT_TRUE(c.up);
    EXPECT_DOUBLE_EQ(c.bandwidthFactor, 1.0);
    EXPECT_DOUBLE_EQ(c.maxJitter, 0.0);
}

TEST(FaultInjector, DeviceDeathTakesLinksDownForever)
{
    FaultPlan plan(7);
    plan.killDevice(2, 1.5);
    FaultInjector inj(plan, 4);

    EXPECT_FALSE(inj.deviceDead(2, 1.0));
    EXPECT_TRUE(inj.deviceDead(2, 1.5));
    EXPECT_DOUBLE_EQ(inj.deviceDeathTime(2), 1.5);
    EXPECT_EQ(inj.deviceDeathTime(0), kFaultForever);
    ASSERT_EQ(inj.scheduledDeaths().size(), 1u);
    EXPECT_EQ(inj.scheduledDeaths()[0], 2);

    LinkCondition c = inj.linkAt(1, 2, 2.0);
    EXPECT_FALSE(c.up);
    EXPECT_EQ(c.upAt, kFaultForever);
    // Links not touching the dead device stay up.
    EXPECT_TRUE(inj.linkAt(0, 1, 2.0).up);
}

TEST(FaultInjector, DrawsArePureFunctionsOfSeedAndIdentity)
{
    FaultPlan plan(1234);
    plan.dropLink(0, 1, 0.0, 0.5);
    FaultInjector a(plan, 2);
    FaultInjector b(plan, 2);

    int drops = 0;
    for (std::uint64_t m = 0; m < 200; ++m) {
        const bool d = a.dropsMessage(0, 1, m, 0, 0.5);
        // Bit-identical across injector instances and query order.
        EXPECT_EQ(d, b.dropsMessage(0, 1, m, 0, 0.5));
        EXPECT_EQ(d, a.dropsMessage(1, 0, m, 0, 0.5)); // unordered link
        drops += d ? 1 : 0;
        const double u = a.uniformDraw(0, 1, m, 0, 2);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_DOUBLE_EQ(u, b.uniformDraw(0, 1, m, 0, 2));
        // Distinct streams decorrelate.
        EXPECT_NE(u, a.uniformDraw(0, 1, m, 0, 3));
    }
    // p = 0.5 over 200 attempts: a draw that is not degenerate.
    EXPECT_GT(drops, 60);
    EXPECT_LT(drops, 140);

    FaultPlan other(99);
    other.dropLink(0, 1, 0.0, 0.5);
    FaultInjector c(other, 2);
    int differs = 0;
    for (std::uint64_t m = 0; m < 200; ++m) {
        differs += a.dropsMessage(0, 1, m, 0, 0.5) !=
                           c.dropsMessage(0, 1, m, 0, 0.5)
                       ? 1
                       : 0;
    }
    EXPECT_GT(differs, 0); // the seed matters
}

// ---------------------------------------------------------------
// ReliableTransport retry policy
// ---------------------------------------------------------------

/** Unlimited-capacity acquire: the attempt starts immediately. */
Seconds
freeAcquire(Seconds earliest, Seconds duration)
{
    return earliest + duration;
}

TEST(ReliableTransport, HealthyLinkIsSingleAttemptZeroOverhead)
{
    ReliableTransport tr(ReliableTransportConfig{}, nullptr);
    const TransferOutcome out =
        tr.send(0, 1, 1, /*earliest=*/2.0, /*occupancy=*/0.5,
                /*flightLatency=*/0.1, freeAcquire);
    EXPECT_TRUE(out.delivered);
    EXPECT_EQ(out.attempts, 1);
    EXPECT_EQ(out.retries, 0);
    EXPECT_EQ(out.timeouts, 0);
    EXPECT_DOUBLE_EQ(out.backoffSeconds, 0.0);
    EXPECT_DOUBLE_EQ(out.finishTime, 2.6);
}

TEST(ReliableTransport, DegradedBandwidthStretchesOccupancy)
{
    FaultPlan plan(5);
    plan.degradeLink(0, 1, 0.0, 0.25);
    FaultInjector inj(plan, 2);
    ReliableTransport tr(ReliableTransportConfig{}, &inj);
    const TransferOutcome out =
        tr.send(0, 1, 1, 0.0, 1.0, 0.0, freeAcquire);
    EXPECT_TRUE(out.delivered);
    EXPECT_DOUBLE_EQ(out.finishTime, 4.0); // 1 s / 0.25
}

TEST(ReliableTransport, DropsRetryWithBoundedBackoffUntilDelivered)
{
    FaultPlan plan(11);
    plan.dropLink(0, 1, 0.0, 0.90); // brutal but recoverable
    FaultInjector inj(plan, 2);
    ReliableTransportConfig cfg;
    cfg.maxRetries = 200;
    ReliableTransport tr(cfg, &inj);

    const TransferOutcome out =
        tr.send(0, 1, 77, 0.0, 1e-6, 0.0, freeAcquire);
    ASSERT_TRUE(out.delivered);
    EXPECT_GT(out.retries, 0);
    EXPECT_EQ(out.timeouts, out.retries);
    EXPECT_EQ(out.attempts, out.retries + 1);
    EXPECT_GT(out.backoffSeconds, 0.0);
    // Every backoff interval is bounded by cap * (1 + jitterFrac).
    EXPECT_LE(out.backoffSeconds,
              out.retries * cfg.backoffCap *
                  (1.0 + cfg.backoffJitterFrac));
    EXPECT_EQ(tr.totalRetries(), out.retries);
    EXPECT_EQ(tr.totalUndelivered(), 0);
}

TEST(ReliableTransport, FlapParksSenderUntilRecovery)
{
    FaultPlan plan(3);
    plan.flapLink(0, 1, 0.0, 2.0);
    FaultInjector inj(plan, 2);
    ReliableTransport tr(ReliableTransportConfig{}, &inj);
    const TransferOutcome out =
        tr.send(0, 1, 1, 0.5, 0.25, 0.0, freeAcquire);
    ASSERT_TRUE(out.delivered);
    EXPECT_DOUBLE_EQ(out.linkDownWaitSeconds, 1.5);
    EXPECT_DOUBLE_EQ(out.finishTime, 2.25);
}

TEST(ReliableTransport, DeadEndpointIsUndeliverable)
{
    FaultPlan plan(3);
    plan.killDevice(1, 0.0);
    FaultInjector inj(plan, 2);
    ReliableTransport tr(ReliableTransportConfig{}, &inj);
    const TransferOutcome out =
        tr.send(0, 1, 1, 1.0, 0.25, 0.0, freeAcquire);
    EXPECT_FALSE(out.delivered);
    EXPECT_EQ(tr.totalUndelivered(), 1);
}

// ---------------------------------------------------------------
// Simulator scenarios
// ---------------------------------------------------------------

/** Two-device rig: producer on device 0 streams to consumer on 1. */
struct NetRig
{
    TaskGraph g{"faultsim"};
    Cluster cluster = makePaperTestbed(2);
    DevicePartition part;
    HbmBinding binding;
    PipelinePlan plan;
    std::vector<Hertz> fmax;
    EdgeId edge = -1;

    explicit NetRig(int blocks = 8, double edgeBytes = 112.5e6)
    {
        WorkProfile w;
        w.computeOps = 3.0e7; // 0.1 s per block at 1 op/cycle, 300 MHz
        w.opsPerCycle = 1.0;
        w.numBlocks = blocks;
        w.computeOps *= blocks;
        const VertexId a =
            g.addVertex("src", ResourceVector{}, w);
        const VertexId b =
            g.addVertex("dst", ResourceVector{}, w);
        part.deviceOf = {0, 1};
        edge = g.addEdge(a, b, 64, edgeBytes);
    }

    SimResult
    run(const FaultPlan *faults = nullptr,
        ReliableTransportConfig transport = {})
    {
        binding.channelsOf.assign(g.numVertices(), {});
        binding.usersPerChannel.assign(
            cluster.numDevices(),
            std::vector<int>(cluster.device().memory().channels, 0));
        plan.edges.assign(g.numEdges(), EdgePipelining{});
        plan.addedAreaPerDevice.assign(cluster.numDevices(),
                                       ResourceVector{});
        fmax.assign(cluster.numDevices(), 300.0e6);
        SimOptions opt;
        opt.faults = faults;
        opt.transport = transport;
        return sim::simulate(g, cluster, part, binding, plan, fmax, opt);
    }
};

TEST(FaultSim, EmptyPlanMatchesHealthyRunExactly)
{
    NetRig rig;
    const SimResult healthy = rig.run();
    FaultPlan empty(1);
    NetRig rig2;
    const SimResult faulted = rig2.run(&empty);
    EXPECT_DOUBLE_EQ(healthy.makespan, faulted.makespan);
    EXPECT_TRUE(faulted.completed);
}

TEST(FaultSim, SingleLinkDegradeSlowsOnlyThatPath)
{
    NetRig rig;
    const SimResult healthy = rig.run();

    FaultPlan plan(21);
    plan.degradeLink(0, 1, 0.0, 0.25);
    NetRig rig2;
    const SimResult degraded = rig2.run(&plan);

    EXPECT_TRUE(degraded.completed);
    EXPECT_GT(degraded.makespan, healthy.makespan);
    // All tokens still arrive exactly once.
    EXPECT_EQ(degraded.edgeComm[rig2.edge].messages, 8);
    EXPECT_EQ(degraded.edgeComm[rig2.edge].undelivered, 0);
    EXPECT_EQ(degraded.firedBlocks, (std::vector<int>{8, 8}));
}

TEST(FaultSim, DropStormDeliversExactlyOnceWithRetries)
{
    FaultPlan plan(4242);
    plan.dropLink(0, 1, 0.0, 0.40);
    NetRig rig(/*blocks=*/32);
    const SimResult res = rig.run(&plan);

    EXPECT_TRUE(res.completed);
    const sim::EdgeCommStats &ec = res.edgeComm[rig.edge];
    EXPECT_EQ(ec.messages, 32);
    EXPECT_EQ(ec.undelivered, 0);
    EXPECT_GT(ec.retries, 0);
    EXPECT_EQ(ec.retries, ec.timeouts);
    EXPECT_GT(ec.backoffSeconds, 0.0);
    EXPECT_DOUBLE_EQ(res.stats.get("net.retries"),
                     static_cast<double>(ec.retries));
}

TEST(FaultSim, FlapStormReplaysByteExactly)
{
    FaultPlan plan(777);
    plan.flapLink(0, 1, 0.05, 0.12)
        .flapLink(0, 1, 0.3, 0.33)
        .flapLink(0, 1, 0.5, 0.58)
        .dropLink(0, 1, 0.0, 0.10)
        .jitterLink(0, 1, 0.0, 5e-4);

    NetRig rig1(/*blocks=*/16);
    const SimResult a = rig1.run(&plan);
    NetRig rig2(/*blocks=*/16);
    const SimResult b = rig2.run(&plan);

    EXPECT_TRUE(a.completed);
    ASSERT_EQ(a.edgeComm.size(), b.edgeComm.size());
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_GT(a.edgeComm[rig1.edge].linkDownWaitSeconds, 0.0);

    // The rendered report is the regression artifact: byte-exact.
    const std::string ra = sim::faultReport(rig1.g, a);
    const std::string rb = sim::faultReport(rig2.g, b);
    EXPECT_EQ(ra, rb);
    EXPECT_NE(ra.find("Fault/recovery report"), std::string::npos);
}

TEST(FaultSim, FpgaDeathMidRunCompletesWithoutHang)
{
    // Kill the consumer device after ~3 of 8 blocks: the sim must
    // drain, not hang, and report the damage.
    FaultPlan plan(99);
    plan.killDevice(1, 0.35);
    NetRig rig;
    const SimResult res = rig.run(&plan);

    EXPECT_FALSE(res.completed);
    ASSERT_EQ(res.deadDevices.size(), 1u);
    EXPECT_EQ(res.deadDevices[0], 1);
    // The producer still finishes every block; the consumer does not.
    EXPECT_EQ(res.firedBlocks[0], 8);
    EXPECT_LT(res.firedBlocks[1], 8);
    // Undeliverable tokens are accounted, not silently lost.
    const sim::EdgeCommStats &ec = res.edgeComm[rig.edge];
    EXPECT_GT(ec.undelivered, 0);
    EXPECT_EQ(ec.messages, 8);

    const std::string report = sim::faultReport(rig.g, res);
    EXPECT_NE(report.find("INCOMPLETE"), std::string::npos);
    EXPECT_NE(report.find("dead devices: 1"), std::string::npos);
    EXPECT_NE(report.find("dst("), std::string::npos);

    // Bit-identical replay.
    NetRig rig2;
    const SimResult res2 = rig2.run(&plan);
    EXPECT_EQ(report, sim::faultReport(rig2.g, res2));
    EXPECT_DOUBLE_EQ(res.makespan, res2.makespan);
}

TEST(FaultSim, NetMetricsResetBetweenRuns)
{
    // Regression: counters and gauges must describe the latest run
    // only — a second, healthier run must not inherit the first
    // run's retry counts.
    FaultPlan stormy(4242);
    stormy.dropLink(0, 1, 0.0, 0.40);
    NetRig rig(/*blocks=*/32);
    rig.run(&stormy);
    const auto snap1 = obs::MetricsRegistry::global().snapshot();
    ASSERT_TRUE(snap1.hasCounter("tapacs.net.retries"));
    EXPECT_GT(snap1.counterValue("tapacs.net.retries"), 0);

    FaultPlan calm(4242);
    calm.jitterLink(0, 1, 0.0, 1e-9);
    NetRig rig2(/*blocks=*/32);
    rig2.run(&calm);
    const auto snap2 = obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap2.counterValue("tapacs.net.retries"), 0);
    EXPECT_EQ(snap2.counterValue("tapacs.net.timeouts"), 0);
}

TEST(FaultSim, StaleSimGaugesClearedBetweenRuns)
{
    // Regression for the between-runs accounting bug: a resource
    // exported by run A but absent in run B must not keep reporting
    // A's numbers after B exports.
    obs::MetricsRegistry::global().clear();
    {
        NetRig rig;
        rig.run();
    }
    const auto snap1 = obs::MetricsRegistry::global().snapshot();
    ASSERT_TRUE(snap1.hasGauge("tapacs.sim.task.dst.busy_seconds"));
    ASSERT_GT(snap1.gaugeValue("tapacs.sim.task.dst.busy_seconds"), 0.0);

    // Second run with a different graph: no task named "dst".
    TaskGraph g("solo");
    WorkProfile w;
    w.computeOps = 1000.0;
    g.addVertex("alone", ResourceVector{}, w);
    Cluster cluster = makePaperTestbed(1);
    DevicePartition part;
    part.deviceOf = {0};
    HbmBinding binding;
    binding.channelsOf.assign(1, {});
    binding.usersPerChannel.assign(
        1, std::vector<int>(cluster.device().memory().channels, 0));
    PipelinePlan plan;
    plan.edges.assign(0, EdgePipelining{});
    plan.addedAreaPerDevice.assign(1, ResourceVector{});
    sim::simulate(g, cluster, part, binding, plan, {300.0e6});

    const auto snap2 = obs::MetricsRegistry::global().snapshot();
    EXPECT_DOUBLE_EQ(snap2.gaugeValue("tapacs.sim.task.dst.busy_seconds"),
                     0.0);
    EXPECT_GT(snap2.gaugeValue("tapacs.sim.task.alone.busy_seconds"),
              0.0);
}

// ---------------------------------------------------------------
// Failure-aware replan
// ---------------------------------------------------------------

/** Random layered DAG sized to fit 4 paper-testbed FPGAs with slack
 *  to spare on 3 (so a single death is survivable). */
TaskGraph
replanDesign(std::uint64_t seed)
{
    Rng rng(seed);
    TaskGraph g("replan");
    std::vector<VertexId> prev;
    for (int l = 0; l < 4; ++l) {
        std::vector<VertexId> cur;
        for (int i = 0; i < 4; ++i) {
            Vertex v;
            v.name = strprintf("t%d_%d", l, i);
            v.area = ResourceVector(rng.uniformReal(5000, 60000),
                                    rng.uniformReal(8000, 90000),
                                    rng.uniformReal(0, 40),
                                    rng.uniformReal(0, 80), 0);
            v.work.computeOps = rng.uniformReal(1e6, 1e8);
            v.work.numBlocks = 8;
            cur.push_back(g.addVertex(v));
        }
        if (!prev.empty()) {
            for (VertexId v : cur) {
                g.addEdge(prev[rng.uniformInt(0, prev.size() - 1)], v,
                          64, rng.uniformReal(1e4, 1e6));
            }
        }
        prev = cur;
    }
    return g;
}

TEST(Replan, ExcludesDeadDevicesAndStaysFeasible)
{
    TaskGraph g = replanDesign(31);
    Cluster cluster = makePaperTestbed(4);
    CompileOptions opt;
    opt.mode = CompileMode::TapaCs;
    opt.numFpgas = 4;
    const CompileResult before = compile(g, cluster, opt);
    ASSERT_TRUE(before.routable) << before.failureReason;

    // Kill the device hosting the most tasks — the worst case.
    std::vector<int> load(4, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ++load[before.partition.deviceOf[v]];
    DeviceId victim = 0;
    for (DeviceId d = 1; d < 4; ++d) {
        if (load[d] > load[victim])
            victim = d;
    }
    ASSERT_GT(load[victim], 0);

    const CompileResult after =
        replan(g, cluster, opt, {victim}, &before.partition);
    ASSERT_TRUE(after.routable) << after.failureReason;

    // No task may land on the dead device, and the eq. 1 threshold
    // must hold on the survivors.
    int stayed = 0, movable = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_NE(after.partition.deviceOf[v], victim);
        if (before.partition.deviceOf[v] != victim) {
            ++movable;
            stayed +=
                after.partition.deviceOf[v] ==
                        before.partition.deviceOf[v]
                    ? 1
                    : 0;
        }
    }
    EXPECT_TRUE(respectsThreshold(g, cluster, after.partition,
                                  after.reservedPerDevice,
                                  opt.threshold));
    // Warm-start hints keep most surviving placements in place.
    EXPECT_GE(2 * stayed, movable)
        << stayed << " of " << movable << " survivors kept";

    // The replanned design must actually run on the survivors.
    sim::SimResult run =
        sim::simulate(g, cluster, after.partition, after.binding,
                      after.pipeline, after.deviceFmax);
    EXPECT_GT(run.makespan, 0.0);
}

TEST(Replan, AllDevicesDeadFailsGracefully)
{
    TaskGraph g = replanDesign(31);
    Cluster cluster = makePaperTestbed(2);
    CompileOptions opt;
    opt.mode = CompileMode::TapaCs;
    opt.numFpgas = 2;
    const CompileResult r = replan(g, cluster, opt, {0, 1});
    EXPECT_FALSE(r.routable);
    EXPECT_NE(r.failureReason.find("every device"), std::string::npos);
}

TEST(Replan, SingleFpgaModeRejectedAsInvalidInput)
{
    // A single-FPGA flow has nothing to fail over to; since the
    // compile service may issue replans, the rejection is a typed
    // InvalidInput, not a process kill.
    TaskGraph g = replanDesign(31);
    Cluster cluster = makePaperTestbed(1);
    CompileOptions opt;
    opt.mode = CompileMode::TapaSingle;
    opt.numFpgas = 1;
    const CompileResult r = replan(g, cluster, opt, {0});
    EXPECT_FALSE(r.routable);
    EXPECT_EQ(r.status.code(), StatusCode::InvalidInput);
    EXPECT_NE(r.status.message().find("multi-FPGA"), std::string::npos);
}

TEST(Replan, DeterministicAcrossWorkerThreadCounts)
{
    // Acceptance: the same seed gives bit-identical fault reports
    // whether the compile flow runs serial or with 4 workers.
    TaskGraph g1 = replanDesign(57);
    TaskGraph g2 = replanDesign(57);
    Cluster cluster = makePaperTestbed(4);
    FaultPlan plan(2026);
    plan.killDevice(2, 0.01).dropLink(0, 1, 0.0, 0.05);

    auto runOnce = [&](TaskGraph &g, int threads) {
        CompileOptions opt;
        opt.mode = CompileMode::TapaCs;
        opt.numFpgas = 4;
        opt.numThreads = threads;
        const CompileResult r = compile(g, cluster, opt);
        EXPECT_TRUE(r.routable) << r.failureReason;
        SimOptions sopt;
        sopt.faults = &plan;
        const SimResult run =
            sim::simulate(g, cluster, r.partition, r.binding,
                          r.pipeline, r.deviceFmax, sopt);
        return sim::faultReport(g, run);
    };
    EXPECT_EQ(runOnce(g1, 1), runOnce(g2, 4));
}

} // namespace
} // namespace tapacs
