/**
 * @file
 * Unit tests for src/common: logging helpers, units, RNG, stats and
 * the table renderer.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace tapacs
{
namespace
{

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("x=%d", 42), "x=42");
    EXPECT_EQ(strprintf("%.2f %s", 3.14159, "pi"), "3.14 pi");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Strprintf, HandlesLongOutput)
{
    std::string big(5000, 'a');
    EXPECT_EQ(strprintf("%s", big.c_str()).size(), 5000u);
}

TEST(Units, BinaryLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(1_MiB, 1024u * 1024u);
    EXPECT_EQ(2_GiB, 2ull * 1024 * 1024 * 1024);
}

TEST(Units, DecimalLiterals)
{
    EXPECT_EQ(1_KB, 1000u);
    EXPECT_EQ(3_MB, 3'000'000u);
    EXPECT_EQ(1_GB, 1'000'000'000u);
}

TEST(Units, BandwidthConversions)
{
    // 100 Gbps Ethernet = 12.5 GB/s.
    EXPECT_DOUBLE_EQ(gbpsToBytesPerSec(100.0), 12.5e9);
    // Paper Table 9: HBM at 460 GBps.
    EXPECT_DOUBLE_EQ(gBytesPerSecToBytesPerSec(460.0), 460.0e9);
}

TEST(Units, TimeLiterals)
{
    EXPECT_DOUBLE_EQ(1_us, 1.0e-6);
    EXPECT_DOUBLE_EQ(1250_ns, 1.25e-6);
    EXPECT_DOUBLE_EQ(3.96_ms, 3.96e-3);
}

TEST(Units, FrequencyLiterals)
{
    EXPECT_DOUBLE_EQ(300_MHz, 3.0e8);
    EXPECT_DOUBLE_EQ(2.45_GHz, 2.45e9);
}

TEST(Units, Formatting)
{
    EXPECT_EQ(formatFrequency(300_MHz), "300 MHz");
    EXPECT_EQ(formatBytes(1024.0), "1.00 KiB");
    EXPECT_EQ(formatSeconds(0.00396), "3.96 ms");
    EXPECT_EQ(formatBandwidth(12.5e9), "12.50 GB/s");
}

TEST(Rng, Deterministic)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(3, 9);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 9u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5u);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(99);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, PowerLawBoundsAndSkew)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.powerLawInt(1, 1000, 2.5);
        ASSERT_GE(v, 1u);
        ASSERT_LE(v, 1000u);
        sum += static_cast<double>(v);
    }
    // Heavy-tailed but mean far below the midpoint of the range.
    EXPECT_LT(sum / 5000.0, 50.0);
}

TEST(Accumulator, TracksMinMaxMean)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    acc.sample(2.0);
    acc.sample(-4.0);
    acc.sample(8.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.min(), -4.0);
    EXPECT_DOUBLE_EQ(acc.max(), 8.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
}

TEST(StatRegistry, ScalarsAndAccumulators)
{
    StatRegistry stats;
    EXPECT_FALSE(stats.has("a"));
    stats.incr("a");
    stats.incr("a", 2.5);
    EXPECT_DOUBLE_EQ(stats.get("a"), 3.5);
    stats.set("a", 1.0);
    EXPECT_DOUBLE_EQ(stats.get("a"), 1.0);
    stats.sample("lat", 5.0);
    stats.sample("lat", 7.0);
    EXPECT_DOUBLE_EQ(stats.accumulator("lat").mean(), 6.0);
    EXPECT_NE(stats.dump().find("a 1"), std::string::npos);
    stats.clear();
    EXPECT_FALSE(stats.has("a"));
}

TEST(TextTable, RendersAlignedCells)
{
    TextTable t({"Name", "Value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| Name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, SeparatorAndTitle)
{
    TextTable t({"A"});
    t.setTitle("My Table");
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const std::string out = t.render();
    EXPECT_EQ(out.rfind("My Table", 0), 0u);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTableDeath, WrongCellCount)
{
    TextTable t({"A", "B"});
    EXPECT_DEATH(t.addRow({"only-one"}), "assertion");
}

TEST(Logging, LevelGate)
{
    const LogLevel old = logLevel();
    setLogLevel(LogLevel::Silent);
    // Must not crash; output is suppressed.
    warn("suppressed %d", 1);
    inform("suppressed");
    debug("suppressed");
    setLogLevel(old);
}

} // namespace
} // namespace tapacs
