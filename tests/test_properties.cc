/**
 * @file
 * Cross-cutting randomized property tests: invariants that must hold
 * for the *whole flow* on arbitrary well-formed inputs, not just the
 * paper benchmarks.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "compiler/compiler.hh"
#include "network/faults.hh"
#include "network/protocols.hh"
#include "sim/dataflow_sim.hh"

namespace tapacs
{
namespace
{

/** Random layered DAG with memory tasks at the edges. */
TaskGraph
randomDesign(std::uint64_t seed, int layers, int width)
{
    Rng rng(seed);
    TaskGraph g(strprintf("rand%llu", (unsigned long long)seed));
    std::vector<std::vector<VertexId>> layer_ids(layers);
    for (int l = 0; l < layers; ++l) {
        const int count =
            1 + static_cast<int>(rng.uniformInt(0, width - 1));
        for (int i = 0; i < count; ++i) {
            Vertex v;
            v.name = strprintf("t%d_%d", l, i);
            v.area = ResourceVector(rng.uniformReal(500, 40000),
                                    rng.uniformReal(800, 60000),
                                    rng.uniformReal(0, 30),
                                    rng.uniformReal(0, 60), 0);
            v.work.computeOps = rng.uniformReal(1e6, 1e9);
            v.work.opsPerCycle = 1 << rng.uniformInt(0, 5);
            v.work.numBlocks = 8;
            if (l == 0 || l == layers - 1) {
                v.work.memChannels =
                    static_cast<int>(rng.uniformInt(1, 3));
                v.work.memReadBytes =
                    l == 0 ? rng.uniformReal(1e6, 1e8) : 0.0;
                v.work.memWriteBytes =
                    l == layers - 1 ? rng.uniformReal(1e6, 1e8) : 0.0;
            }
            layer_ids[l].push_back(g.addVertex(v));
        }
    }
    // Every non-source vertex gets at least one upstream edge.
    for (int l = 1; l < layers; ++l) {
        for (VertexId v : layer_ids[l]) {
            const auto &prev = layer_ids[l - 1];
            const VertexId u = prev[rng.uniformInt(0, prev.size() - 1)];
            g.addEdge(u, v, 32 << rng.uniformInt(0, 4),
                      rng.uniformReal(1e4, 1e7));
            if (rng.bernoulli(0.3) && l >= 2) {
                const auto &pp = layer_ids[l - 2];
                g.addEdge(pp[rng.uniformInt(0, pp.size() - 1)], v, 64,
                          rng.uniformReal(1e4, 1e6));
            }
        }
    }
    return g;
}

class FullFlowProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(FullFlowProperty, CompileAndSimulateInvariants)
{
    const int seed = GetParam();
    TaskGraph g = randomDesign(7000 + seed, 3 + seed % 3, 4);
    g.validate();
    const int fpgas = 1 + seed % 4;
    Cluster cluster = makePaperTestbed(fpgas);
    CompileOptions opt;
    opt.mode = fpgas > 1 ? CompileMode::TapaCs : CompileMode::TapaSingle;
    opt.numFpgas = fpgas;
    opt.seed = seed;
    CompileResult r = compile(g, cluster, opt);
    ASSERT_TRUE(r.routable) << "seed " << seed << ": "
                            << r.failureReason;

    // Invariant 1: every task has a device and an in-grid slot.
    const DeviceModel &dev = cluster.device();
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_GE(r.partition.deviceOf[v], 0);
        ASSERT_LT(r.partition.deviceOf[v], fpgas);
        ASSERT_LT(r.placement.slotOf[v].col, dev.cols());
        ASSERT_LT(r.placement.slotOf[v].row, dev.rows());
    }

    // Invariant 2: threshold + channel capacity respected per device.
    EXPECT_TRUE(respectsThreshold(g, cluster, r.partition,
                                  r.reservedPerDevice, opt.threshold));
    std::vector<int> channels(fpgas, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        channels[r.partition.deviceOf[v]] += g.vertex(v).work.memChannels;
    for (int d = 0; d < fpgas; ++d)
        EXPECT_LE(channels[d], dev.memory().channels);

    // Invariant 3: every memory task got exactly its channels.
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(r.binding.channelsOf[v].size(),
                  static_cast<size_t>(g.vertex(v).work.memChannels));
    }

    // Invariant 4: pipelining is balanced and clock is positive and
    // bounded by the board.
    EXPECT_TRUE(isLatencyBalanced(g, r.partition, r.pipeline));
    EXPECT_GT(r.fmax, 0.0);
    EXPECT_LE(r.fmax, dev.maxFrequency());

    // Invariant 5: the simulation terminates, the makespan covers
    // every task, and cross-device bytes equal the partition cut.
    sim::SimResult run = sim::simulate(g, cluster, r.partition,
                                       r.binding, r.pipeline,
                                       r.deviceFmax);
    EXPECT_GT(run.makespan, 0.0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_LE(run.taskFinish[v], run.makespan + 1e-12);
    EXPECT_NEAR(run.interDeviceBytes,
                interFpgaTrafficBytes(g, r.partition),
                interFpgaTrafficBytes(g, r.partition) * 0.01 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(RandomDesigns, FullFlowProperty,
                         ::testing::Range(0, 12));

TEST(FullFlowDeterminism, SameSeedSameResult)
{
    TaskGraph g1 = randomDesign(99, 4, 4);
    TaskGraph g2 = randomDesign(99, 4, 4);
    Cluster cluster = makePaperTestbed(3);
    CompileOptions opt;
    opt.mode = CompileMode::TapaCs;
    opt.numFpgas = 3;
    CompileResult a = compile(g1, cluster, opt);
    CompileResult b = compile(g2, cluster, opt);
    ASSERT_TRUE(a.routable && b.routable);
    EXPECT_EQ(a.partition.deviceOf, b.partition.deviceOf);
    EXPECT_DOUBLE_EQ(a.fmax, b.fmax);
    sim::SimResult ra = sim::simulate(g1, cluster, a.partition, a.binding,
                                      a.pipeline, a.deviceFmax);
    sim::SimResult rb = sim::simulate(g2, cluster, b.partition, b.binding,
                                      b.pipeline, b.deviceFmax);
    EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
}

/**
 * Random pipeline over a random topology, simulated directly (no
 * compile): every task is hand-placed so the fault machinery sees a
 * controlled mix of same-device, same-node and cross-node FIFOs.
 */
struct RandomFaultCase
{
    TaskGraph g{"p"};
    Cluster cluster;
    DevicePartition part;
    std::vector<EdgeId> edges;
    int blocks = 0;

    explicit RandomFaultCase(std::uint64_t seed) : cluster(makePaperTestbed(2))
    {
        Rng rng(seed);
        // 8 exercises the cross-node (host-staged) transfer path.
        const int sizes[] = {2, 3, 4, 8};
        const int fpgas = sizes[rng.uniformInt(0, 3)];
        cluster = makePaperTestbed(fpgas);
        blocks = 2 << rng.uniformInt(0, 3);
        const int tasks = 3 + static_cast<int>(rng.uniformInt(0, 5));
        VertexId prev = -1;
        for (int i = 0; i < tasks; ++i) {
            WorkProfile w;
            w.computeOps = rng.uniformReal(1e5, 3e7);
            w.opsPerCycle = 1.0;
            w.numBlocks = blocks;
            Vertex v;
            v.name = strprintf("t%d", i);
            v.work = w;
            const VertexId id = g.addVertex(v);
            part.deviceOf.push_back(
                static_cast<DeviceId>(rng.uniformInt(0, fpgas - 1)));
            if (prev >= 0) {
                edges.push_back(g.addEdge(prev, id, 64,
                                          rng.uniformReal(1e4, 1e6)));
            }
            prev = id;
        }
    }

    sim::SimResult
    run(const FaultPlan *faults,
        sim::SimEngine engine = sim::SimEngine::Serial, int threads = 0)
    {
        HbmBinding binding;
        binding.channelsOf.assign(g.numVertices(), {});
        binding.usersPerChannel.assign(
            cluster.numDevices(),
            std::vector<int>(cluster.device().memory().channels, 0));
        PipelinePlan plan;
        plan.edges.assign(g.numEdges(), EdgePipelining{});
        plan.addedAreaPerDevice.assign(cluster.numDevices(),
                                       ResourceVector{});
        std::vector<Hertz> fmax(cluster.numDevices(), 300.0e6);
        sim::SimOptions opt;
        opt.faults = faults;
        opt.exportMetrics = false;
        opt.engine = engine;
        opt.numThreads = threads;
        opt.recordTimeline = true;
        return sim::simulate(g, cluster, part, binding, plan, fmax, opt);
    }
};

class TransportProperty : public ::testing::TestWithParam<int>
{
};

/**
 * Property: on 200 random task graphs x cluster topologies, with
 * every link dropping each attempt with probability <= 5 %, the
 * reliable transport delivers every token exactly once (the run
 * completes, nothing is undelivered, nothing is double-counted), and
 * an identical seed replays to the bit.
 */
TEST_P(TransportProperty, ExactlyOnceUnderLossAndDeterministic)
{
    const int seed = GetParam();
    RandomFaultCase c(5000 + seed);
    Rng rng(9000 + seed);
    FaultPlan plan(17 + seed);
    // Drop on every device pair the chain can cross.
    for (DeviceId a = 0; a < c.cluster.numDevices(); ++a) {
        for (DeviceId b = a + 1; b < c.cluster.numDevices(); ++b)
            plan.dropLink(a, b, 0.0, rng.uniformReal(0.005, 0.05));
    }

    RandomFaultCase c2(5000 + seed);
    const sim::SimResult r1 = c.run(&plan);
    const sim::SimResult r2 = c2.run(&plan);

    ASSERT_TRUE(r1.completed) << "seed " << seed;
    EXPECT_DOUBLE_EQ(r1.stats.get("net.undelivered"), 0.0);
    for (EdgeId e : c.edges) {
        const sim::EdgeCommStats &ec = r1.edgeComm[e];
        const bool crosses = c.part.deviceOf[c.g.edge(e).src] !=
                             c.part.deviceOf[c.g.edge(e).dst];
        // Exactly one transport message per block, none lost; edges
        // that never cross a device see no transport traffic at all.
        EXPECT_EQ(ec.messages, crosses ? c.blocks : 0);
        EXPECT_EQ(ec.undelivered, 0);
        EXPECT_EQ(ec.retries, ec.timeouts);
    }
    for (VertexId v = 0; v < c.g.numVertices(); ++v)
        EXPECT_EQ(r1.firedBlocks[v], c.blocks);

    // Bit-identical replay of the same seed.
    EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
    for (EdgeId e : c.edges) {
        EXPECT_EQ(r1.edgeComm[e].retries, r2.edgeComm[e].retries);
        EXPECT_DOUBLE_EQ(r1.edgeComm[e].backoffSeconds,
                         r2.edgeComm[e].backoffSeconds);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomLossyNetworks, TransportProperty,
                         ::testing::Range(0, 200));

class EngineEquivalence : public ::testing::TestWithParam<int>
{
};

/**
 * Property: on 200 random task graphs x cluster topologies, with and
 * without a lossy fault plan, the conservative parallel engine is
 * bit-identical to the serial engine — same makespan, same per-task
 * finish times, same per-edge transport accounting, same timeline —
 * regardless of thread count.
 */
TEST_P(EngineEquivalence, ParallelBitIdenticalToSerial)
{
    const int seed = GetParam();
    RandomFaultCase c(5000 + seed);
    Rng rng(9000 + seed);
    FaultPlan plan(17 + seed);
    for (DeviceId a = 0; a < c.cluster.numDevices(); ++a) {
        for (DeviceId b = a + 1; b < c.cluster.numDevices(); ++b)
            plan.dropLink(a, b, 0.0, rng.uniformReal(0.005, 0.05));
    }

    for (const FaultPlan *faults :
         {static_cast<const FaultPlan *>(nullptr),
          static_cast<const FaultPlan *>(&plan)}) {
        const sim::SimResult serial =
            c.run(faults, sim::SimEngine::Serial);
        const int threads = 1 + seed % 8;
        const sim::SimResult par =
            c.run(faults, sim::SimEngine::Parallel, threads);
        SCOPED_TRACE(strprintf("seed %d faults %d threads %d", seed,
                               faults != nullptr, threads));
        EXPECT_EQ(serial.makespan, par.makespan);
        EXPECT_EQ(serial.completed, par.completed);
        EXPECT_EQ(serial.interDeviceBytes, par.interDeviceBytes);
        EXPECT_EQ(serial.taskFinish, par.taskFinish);
        EXPECT_EQ(serial.firedBlocks, par.firedBlocks);
        EXPECT_EQ(serial.stats.get("events"), par.stats.get("events"));
        EXPECT_EQ(serial.stats.get("hbm.busy_seconds"),
                  par.stats.get("hbm.busy_seconds"));
        ASSERT_EQ(serial.edgeComm.size(), par.edgeComm.size());
        for (EdgeId e = 0; e < (EdgeId)serial.edgeComm.size(); ++e) {
            EXPECT_EQ(serial.edgeComm[e].messages,
                      par.edgeComm[e].messages);
            EXPECT_EQ(serial.edgeComm[e].retries,
                      par.edgeComm[e].retries);
            EXPECT_EQ(serial.edgeComm[e].undelivered,
                      par.edgeComm[e].undelivered);
            EXPECT_EQ(serial.edgeComm[e].backoffSeconds,
                      par.edgeComm[e].backoffSeconds);
        }
        ASSERT_EQ(serial.timeline.size(), par.timeline.size());
        for (std::size_t i = 0; i < serial.timeline.size(); ++i) {
            EXPECT_EQ(serial.timeline[i].task, par.timeline[i].task);
            EXPECT_EQ(serial.timeline[i].block,
                      par.timeline[i].block);
            EXPECT_EQ(serial.timeline[i].start,
                      par.timeline[i].start);
            EXPECT_EQ(serial.timeline[i].writeDone,
                      par.timeline[i].writeDone);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphsAndTopologies, EngineEquivalence,
                         ::testing::Range(0, 200));

class LatencyMonotonicity : public ::testing::TestWithParam<int>
{
};

/**
 * Property: injected latency only hurts. Scaling every link's jitter
 * bound never decreases the simulated makespan — each message's
 * jitter draw is independent of the bound, so a larger bound delays
 * every event pointwise and the timed event graph is monotone.
 */
TEST_P(LatencyMonotonicity, MakespanNonDecreasingInJitter)
{
    const int seed = GetParam();
    Seconds prev = -1.0;
    for (const double scale : {0.0, 1.0, 3.0}) {
        RandomFaultCase c(6000 + seed);
        FaultPlan plan(23 + seed);
        for (DeviceId a = 0; a < c.cluster.numDevices(); ++a) {
            for (DeviceId b = a + 1; b < c.cluster.numDevices(); ++b) {
                // Always scheduled so the fault path stays active at
                // scale 0 (identical machinery, zero magnitude).
                plan.jitterLink(a, b, 0.0, scale * 2e-4);
            }
        }
        const sim::SimResult r = c.run(&plan);
        ASSERT_TRUE(r.completed);
        EXPECT_GE(r.makespan, prev) << "seed " << seed << " scale "
                                    << scale;
        prev = r.makespan;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomJitteredNetworks, LatencyMonotonicity,
                         ::testing::Range(0, 10));

TEST(FullFlowMonotonicity, MoreFpgasNeverHurtFrequency)
{
    // Spreading the same design over more devices cannot make the
    // worst-congested device worse (it can only relieve pressure).
    TaskGraph g = randomDesign(123, 4, 5);
    Hertz prev = 0.0;
    for (int f : {1, 2, 4}) {
        Cluster cluster = makePaperTestbed(f);
        CompileOptions opt;
        opt.mode = f > 1 ? CompileMode::TapaCs : CompileMode::TapaSingle;
        opt.numFpgas = f;
        CompileResult r = compile(g, cluster, opt);
        ASSERT_TRUE(r.routable);
        EXPECT_GE(r.fmax, prev * 0.85) << f << " FPGAs"; // modest slack
        prev = std::max(prev, r.fmax);
    }
}

} // namespace
} // namespace tapacs
