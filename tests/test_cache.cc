/**
 * @file
 * Compile-cache tests: canonical-key properties (relabeling
 * invariance, mutation sensitivity), store mechanics (LRU, metrics,
 * disk tier), the cold/warm differential (a cache hit never changes a
 * compile result), family warm-starts, and shared-cache concurrency.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "cache/compile_cache.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "compiler/compiler.hh"
#include "hls/task_ir.hh"
#include "network/cluster.hh"
#include "network/topology.hh"
#include "obs/metrics.hh"

namespace tapacs
{
namespace
{

/** Random layered DAG in the style of the full-flow property suite:
 *  real-valued areas and profiles, memory tasks at the edges. */
TaskGraph
randomDesign(std::uint64_t seed, int layers, int width)
{
    Rng rng(seed);
    TaskGraph g(strprintf("rand%llu", (unsigned long long)seed));
    std::vector<std::vector<VertexId>> layer_ids(layers);
    for (int l = 0; l < layers; ++l) {
        const int count =
            1 + static_cast<int>(rng.uniformInt(0, width - 1));
        for (int i = 0; i < count; ++i) {
            Vertex v;
            v.name = strprintf("t%d_%d", l, i);
            v.area = ResourceVector(rng.uniformReal(500, 40000),
                                    rng.uniformReal(800, 60000),
                                    rng.uniformReal(0, 30),
                                    rng.uniformReal(0, 60), 0);
            v.work.computeOps = rng.uniformReal(1e6, 1e9);
            v.work.opsPerCycle = 1 << rng.uniformInt(0, 5);
            v.work.numBlocks = 8;
            if (l == 0 || l == layers - 1) {
                v.work.memChannels =
                    static_cast<int>(rng.uniformInt(1, 3));
                v.work.memReadBytes =
                    l == 0 ? rng.uniformReal(1e6, 1e8) : 0.0;
                v.work.memWriteBytes =
                    l == layers - 1 ? rng.uniformReal(1e6, 1e8) : 0.0;
            }
            layer_ids[l].push_back(g.addVertex(v));
        }
    }
    for (int l = 1; l < layers; ++l) {
        for (VertexId v : layer_ids[l]) {
            const auto &prev = layer_ids[l - 1];
            const VertexId u = prev[rng.uniformInt(0, prev.size() - 1)];
            g.addEdge(u, v, 32 << rng.uniformInt(0, 4),
                      rng.uniformReal(1e4, 1e7));
            if (rng.bernoulli(0.3) && l >= 2) {
                const auto &pp = layer_ids[l - 2];
                g.addEdge(pp[rng.uniformInt(0, pp.size() - 1)], v, 64,
                          rng.uniformReal(1e4, 1e6));
            }
        }
    }
    return g;
}

/**
 * An isomorphic relabeling: the same design re-inserted under random
 * vertex and edge orders. newIdOf maps original vertex ids to ids in
 * the relabeled graph.
 */
TaskGraph
relabel(const TaskGraph &g, std::uint64_t seed,
        std::vector<VertexId> *newIdOf)
{
    Rng rng(seed);
    std::vector<VertexId> order(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        order[v] = v;
    for (int i = g.numVertices() - 1; i > 0; --i)
        std::swap(order[i], order[rng.uniformInt(0, i)]);

    TaskGraph out(g.name() + "_relabeled");
    newIdOf->assign(g.numVertices(), -1);
    for (VertexId nv = 0; nv < g.numVertices(); ++nv) {
        (*newIdOf)[order[nv]] = nv;
        out.addVertex(g.vertex(order[nv]));
    }
    std::vector<EdgeId> eorder(g.numEdges());
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        eorder[e] = e;
    for (int i = g.numEdges() - 1; i > 0; --i)
        std::swap(eorder[i], eorder[rng.uniformInt(0, i)]);
    for (EdgeId ne = 0; ne < g.numEdges(); ++ne) {
        const Edge &ed = g.edge(eorder[ne]);
        const EdgeId id =
            out.addEdge((*newIdOf)[ed.src], (*newIdOf)[ed.dst],
                        ed.widthBits, ed.totalBytes, ed.depth);
        out.edge(id).initialTokens = ed.initialTokens;
    }
    return out;
}

constexpr int kPropertyCases = 200;

TEST(CacheKeyProperty, RelabelingHashesIdenticallyAndHitsTheCache)
{
    for (int seed = 0; seed < kPropertyCases; ++seed) {
        TaskGraph g = randomDesign(9000 + seed, 3 + seed % 3, 4);
        std::vector<VertexId> new_id;
        TaskGraph h = relabel(g, 77 + seed, &new_id);

        const cache::GraphFingerprint fg = cache::fingerprintGraph(g);
        const cache::GraphFingerprint fh = cache::fingerprintGraph(h);
        ASSERT_EQ(fg.structural, fh.structural) << "seed " << seed;

        const int fpgas = 2 + seed % 3;
        Cluster cluster = makePaperTestbed(fpgas);
        const InterFpgaOptions opts;
        ASSERT_EQ(cache::interKey(fg, cluster, fpgas, opts),
                  cache::interKey(fh, cluster, fpgas, opts))
            << "seed " << seed;

        // The relabeled twin must not just hash alike, it must *hit*:
        // a partition stored under g's key comes back under h's key
        // with every assignment transported through the isomorphism.
        cache::CacheStore store;
        cache::CompileCache cc(store);
        InterFpgaResult stored;
        stored.feasible = true;
        stored.cost = 123.5;
        stored.partition.deviceOf.resize(g.numVertices());
        for (VertexId v = 0; v < g.numVertices(); ++v)
            stored.partition.deviceOf[v] = v % fpgas;
        const cache::CacheKey key =
            cache::interKey(fg, cluster, fpgas, opts);
        cc.putInter(key, fg, stored);

        InterFpgaResult loaded;
        ASSERT_TRUE(cc.getInter(cache::interKey(fh, cluster, fpgas, opts),
                                fh, &loaded))
            << "seed " << seed;
        EXPECT_EQ(loaded.cost, stored.cost);
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            EXPECT_EQ(loaded.partition.deviceOf[new_id[v]],
                      stored.partition.deviceOf[v])
                << "seed " << seed << " vertex " << v;
        }
    }
}

TEST(CacheKeyProperty, AnySingleMutationChangesTheKey)
{
    for (int seed = 0; seed < kPropertyCases; ++seed) {
        Rng rng(31000 + seed);
        TaskGraph g = randomDesign(9000 + seed, 3 + seed % 3, 4);
        const int fpgas = 2 + seed % 3;
        Cluster cluster = makePaperTestbed(fpgas);
        InterFpgaOptions opts;
        const cache::CacheKey base = cache::interKey(
            cache::fingerprintGraph(g), cluster, fpgas, opts);

        // One random mutation per case, spread over every input class
        // the key must be sensitive to.
        const int kind = static_cast<int>(rng.uniformInt(0, 9));
        Cluster mutated_cluster = cluster;
        switch (kind) {
          case 0: { // FIFO width
            EdgeId e = rng.uniformInt(0, g.numEdges() - 1);
            g.edge(e).widthBits *= 2;
            break;
          }
          case 1: { // FIFO traffic volume
            EdgeId e = rng.uniformInt(0, g.numEdges() - 1);
            g.edge(e).totalBytes += 1.0;
            break;
          }
          case 2: { // FIFO depth
            EdgeId e = rng.uniformInt(0, g.numEdges() - 1);
            g.edge(e).depth += 1;
            break;
          }
          case 3: { // one resource-vector component
            VertexId v = rng.uniformInt(0, g.numVertices() - 1);
            g.vertex(v).area[ResourceKind::Lut] += 1.0;
            break;
          }
          case 4: { // work profile
            VertexId v = rng.uniformInt(0, g.numVertices() - 1);
            g.vertex(v).work.computeOps += 1.0;
            break;
          }
          case 5: { // memory channel demand
            VertexId v = rng.uniformInt(0, g.numVertices() - 1);
            g.vertex(v).work.memChannels += 1;
            break;
          }
          case 6: // topology
            mutated_cluster =
                Cluster(cluster.device(),
                        Topology(TopologyKind::Chain, fpgas));
            break;
          case 7: // threshold
            opts.threshold += 0.01;
            break;
          case 8: // solver budget
            opts.solver.timeLimitSeconds *= 2.0;
            break;
          case 9: // coarsening seed
            opts.seed += 1;
            break;
        }
        const cache::CacheKey mutated = cache::interKey(
            cache::fingerprintGraph(g), mutated_cluster, fpgas, opts);
        EXPECT_NE(base, mutated) << "seed " << seed << " kind " << kind;
    }
}

TEST(CacheKeyProperty, DeviceCountAndWiringSeparateFamilies)
{
    TaskGraph g = randomDesign(1234, 4, 4);
    const cache::GraphFingerprint fp = cache::fingerprintGraph(g);
    Cluster two = makePaperTestbed(2);
    Cluster four = makePaperTestbed(4);
    EXPECT_NE(cache::interFamilyKey(fp, two, 2),
              cache::interFamilyKey(fp, four, 4));
    EXPECT_NE(cache::clusterKey(two), cache::clusterKey(four));
}

TEST(CacheStore, LruEvictsWithinBudgetAndCountsMetrics)
{
    obs::MetricsRegistry::global().resetPrefix("tapacs.cache.");
    cache::CacheStore::Options opt;
    opt.capacityBytes = 4096;
    opt.shards = 1; // single shard so the LRU order is observable
    cache::CacheStore store(std::move(opt));

    auto key = [](int i) {
        cache::KeyBuilder b;
        b.i64(i);
        return b.build();
    };
    const std::string blob(512, 'x');
    for (int i = 0; i < 32; ++i)
        store.put(key(i), blob);
    EXPECT_LE(store.bytesInMemory(), 4096u);

    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_GT(snap.counterValue("tapacs.cache.evictions"), 0);
    EXPECT_EQ(snap.gaugeValue("tapacs.cache.bytes"),
              static_cast<double>(store.bytesInMemory()));

    // The most recent entries survived; the oldest were evicted.
    EXPECT_NE(store.get(key(31)), nullptr);
    EXPECT_EQ(store.get(key(0)), nullptr);
    const obs::MetricsSnapshot snap2 =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_GE(snap2.counterValue("tapacs.cache.hits"), 1);
    EXPECT_GE(snap2.counterValue("tapacs.cache.misses"), 1);
}

TEST(CacheStore, DiskTierRoundTripsAcrossStoreInstances)
{
    const std::string dir =
        testing::TempDir() + "/tapacs_cache_disk_test";
    std::filesystem::remove_all(dir);

    cache::CacheKey key;
    key.hi = 0x1234;
    key.lo = 0x5678;
    {
        cache::CacheStore::Options opt;
        opt.directory = dir;
        cache::CacheStore store(std::move(opt));
        store.put(key, "payload");
    }
    // A brand-new store over the same directory serves the entry from
    // disk and promotes it into memory.
    cache::CacheStore::Options opt;
    opt.directory = dir;
    cache::CacheStore store(std::move(opt));
    auto blob = store.get(key);
    ASSERT_NE(blob, nullptr);
    EXPECT_EQ(*blob, "payload");
    EXPECT_GT(store.bytesInMemory(), 0u);
    std::filesystem::remove_all(dir);
}

TEST(CacheStore, MalformedEntryDegradesToMiss)
{
    cache::CacheStore store;
    cache::CompileCache cc(store);
    cache::CacheKey key;
    key.hi = 7;
    store.put(key, "hls1 garbage that does not parse");
    hls::SynthesisResult out;
    EXPECT_FALSE(cc.getHls(key, &out));
    store.put(key, "");
    EXPECT_FALSE(cc.getHls(key, &out));
}

TEST(CompileCache, HlsEntryRoundTripsExactly)
{
    cache::CacheStore store;
    cache::CompileCache cc(store);
    hls::SynthesisResult r;
    r.taskName = "task with spaces";
    r.area = ResourceVector(1234.5, 0.125, 3e-7, 42.0, 1.0);
    r.fmaxCeiling = 312.5e6;
    r.fsmStates = 17;
    r.pipelineDepth = 9;
    cache::CacheKey key;
    key.lo = 99;
    cc.putHls(key, r);
    hls::SynthesisResult out;
    ASSERT_TRUE(cc.getHls(key, &out));
    EXPECT_EQ(out.taskName, r.taskName);
    EXPECT_TRUE(out.area == r.area);
    EXPECT_EQ(out.fmaxCeiling, r.fmaxCeiling); // bit-exact, not approx
    EXPECT_EQ(out.fsmStates, r.fsmStates);
    EXPECT_EQ(out.pipelineDepth, r.pipelineDepth);
}

/** Field-by-field bit-exact comparison of two compile results. */
void
expectResultsIdentical(const CompileResult &a, const CompileResult &b,
                       const char *what)
{
    ASSERT_EQ(a.routable, b.routable) << what;
    EXPECT_TRUE(a.partition == b.partition) << what;
    EXPECT_TRUE(a.placement == b.placement) << what;
    EXPECT_TRUE(a.binding == b.binding) << what;
    EXPECT_EQ(a.fmax, b.fmax) << what;
    EXPECT_EQ(a.cutTrafficBytes, b.cutTrafficBytes) << what;
    EXPECT_EQ(a.deviceFmax, b.deviceFmax) << what;
    EXPECT_EQ(a.pipeline.totalRegisterBits, b.pipeline.totalRegisterBits)
        << what;
    EXPECT_EQ(a.l1SolverStats.nodesExplored, b.l1SolverStats.nodesExplored)
        << what;
    EXPECT_EQ(a.l2SolverStats.lpIterations, b.l2SolverStats.lpIterations)
        << what;
}

TEST(CompileCache, WarmCompileIsByteIdenticalToColdAndUncached)
{
    TaskGraph g1 = randomDesign(4242, 4, 4);
    TaskGraph g2 = randomDesign(4242, 4, 4);
    TaskGraph g3 = randomDesign(4242, 4, 4);
    Cluster cluster = makePaperTestbed(3);
    CompileOptions opt;
    opt.mode = CompileMode::TapaCs;
    opt.numFpgas = 3;

    const CompileResult uncached = compile(g1, cluster, opt);
    ASSERT_TRUE(uncached.routable) << uncached.failureReason;

    cache::CacheStore store;
    cache::CompileCache cc(store);
    opt.cache = &cc;
    const CompileResult cold = compile(g2, cluster, opt);
    const CompileResult warm = compile(g3, cluster, opt);

    expectResultsIdentical(uncached, cold, "cold vs uncached");
    expectResultsIdentical(cold, warm, "warm vs cold");
    // The warm run was served from the cache: both solver phases hit.
    EXPECT_GT(store.bytesInMemory(), 0u);
}

TEST(CompileCache, HlsPhaseMemoizesPerTask)
{
    obs::MetricsRegistry::global().resetPrefix("tapacs.cache.");
    Cluster cluster = makePaperTestbed(2);
    CompileOptions opt;
    opt.mode = CompileMode::TapaCs;
    opt.numFpgas = 2;
    cache::CacheStore store;
    cache::CompileCache cc(store);
    opt.cache = &cc;

    // Two programs sharing task IRs: the second compile's phase 2 must
    // be served per-task from the cache.
    TaskGraph g1 = randomDesign(5555, 3, 3);
    std::vector<hls::TaskIr> tasks;
    for (VertexId v = 0; v < g1.numVertices(); ++v) {
        hls::TaskIr t;
        t.name = g1.vertex(v).name;
        t.intAluUnits = 4 + v;
        t.fsmStates = 3;
        tasks.push_back(t);
    }
    const CompileResult r1 = compileProgram(g1, tasks, cluster, opt);
    const std::int64_t misses_after_cold =
        obs::MetricsRegistry::global()
            .snapshot()
            .counterValue("tapacs.cache.misses");

    TaskGraph g2 = randomDesign(5555, 3, 3);
    const CompileResult r2 = compileProgram(g2, tasks, cluster, opt);
    expectResultsIdentical(r1, r2, "recompile");
    for (VertexId v = 0; v < g1.numVertices(); ++v)
        EXPECT_TRUE(g1.vertex(v).area == g2.vertex(v).area);

    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    // Warm run added hits but no new HLS misses.
    EXPECT_EQ(snap.counterValue("tapacs.cache.misses"),
              misses_after_cold);
    EXPECT_GE(snap.counterValue("tapacs.cache.hits"),
              static_cast<std::int64_t>(tasks.size()));
}

TEST(CompileCache, FamilyEntryWarmStartsNearMissRequests)
{
    obs::MetricsRegistry::global().resetPrefix("tapacs.cache.");
    TaskGraph g1 = randomDesign(7777, 4, 4);
    TaskGraph g2 = randomDesign(7777, 4, 4);
    Cluster cluster = makePaperTestbed(2);
    cache::CacheStore store;
    cache::CompileCache cc(store);

    CompileOptions opt;
    opt.mode = CompileMode::TapaCs;
    opt.numFpgas = 2;
    opt.cache = &cc;
    const CompileResult cold = compile(g1, cluster, opt);
    ASSERT_TRUE(cold.routable) << cold.failureReason;

    // Same design, different solver budget: the exact key misses, the
    // family entry supplies warm-start hints.
    opt.cacheWarmStart = true;
    opt.inter.solver.timeLimitSeconds *= 2.0;
    const CompileResult near = compile(g2, cluster, opt);
    ASSERT_TRUE(near.routable) << near.failureReason;
    EXPECT_TRUE(respectsThreshold(g2, cluster, near.partition,
                                  near.reservedPerDevice, opt.threshold));
    EXPECT_EQ(obs::MetricsRegistry::global()
                  .snapshot()
                  .counterValue("tapacs.cache.warm_starts"),
              1);
}

TEST(CacheConcurrency, SharedCacheBatchMatchesSerialBitExactly)
{
    // Overlapping requests: 3 distinct designs, 4 executions each,
    // interleaved. The serial uncached pass is the reference; the
    // 4-thread pass shares one cache, so most executions are hits —
    // and every result must still be bit-identical.
    constexpr int kDesigns = 3;
    constexpr int kRepeats = 4;
    Cluster cluster = makePaperTestbed(2);
    CompileOptions base;
    base.mode = CompileMode::TapaCs;
    base.numFpgas = 2;

    std::vector<CompileResult> reference(kDesigns);
    for (int d = 0; d < kDesigns; ++d) {
        TaskGraph g = randomDesign(6000 + d, 4, 4);
        reference[d] = compile(g, cluster, base);
        ASSERT_TRUE(reference[d].routable)
            << reference[d].failureReason;
    }

    cache::CacheStore store;
    cache::CompileCache cc(store);
    std::vector<CompileResult> parallel(kDesigns * kRepeats);
    std::atomic<std::size_t> next{0};
    ThreadPool pool(4);
    TaskGroup group(pool);
    for (int t = 0; t < 4; ++t) {
        group.run([&]() {
            while (true) {
                const std::size_t i = next.fetch_add(1);
                if (i >= parallel.size())
                    return;
                TaskGraph g = randomDesign(
                    6000 + static_cast<int>(i) % kDesigns, 4, 4);
                CompileOptions opt = base;
                opt.cache = &cc;
                parallel[i] = compile(g, cluster, opt);
            }
        });
    }
    group.wait();

    for (std::size_t i = 0; i < parallel.size(); ++i) {
        expectResultsIdentical(reference[i % kDesigns], parallel[i],
                               strprintf("execution %zu", i).c_str());
    }
}

} // namespace
} // namespace tapacs
