/**
 * @file
 * tapacs-golden — golden-file regression harness.
 *
 * Compiles and simulates the four paper workloads (stencil, PageRank,
 * KNN, CNN) in small 2-FPGA configurations, each twice: once healthy
 * and once under a fixed seeded fault scenario (degraded + lossy +
 * flapping link). The result is serialized as canonical JSON — fixed
 * key order, %.12g doubles, no wall-clock fields — so the bytes are a
 * stable function of the model alone and any behavioural drift in the
 * compiler, simulator or fault machinery shows up as a diff.
 *
 * Usage:
 *   tapacs-golden --write DIR    regenerate DIR/<workload>.json
 *   tapacs-golden --check DIR    compare against DIR/<workload>.json;
 *                                exit 1 on any mismatch
 *   tapacs-golden --check-cached DIR
 *                                compile every workload twice against
 *                                one shared compile cache (cold, then
 *                                warm from a fresh design); the warm
 *                                render must be byte-identical to the
 *                                cold one AND to the golden — the
 *                                differential proof that a cache hit
 *                                never changes an answer
 *   tapacs-golden --check-cached-diff DIR
 *                                the warm-vs-cold differential only,
 *                                without the golden comparison — for
 *                                sanitizer builds, where the slowed
 *                                time-limited ILP solves legitimately
 *                                land on different incumbents than
 *                                the release-recorded goldens
 *
 * Regenerate with tools/update_goldens.sh after an intentional model
 * change, and review the diff like any other code change.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/cnn.hh"
#include "apps/knn.hh"
#include "apps/pagerank.hh"
#include "apps/stencil.hh"
#include "cache/compile_cache.hh"
#include "common/logging.hh"
#include "compiler/compiler.hh"
#include "network/faults.hh"
#include "sim/dataflow_sim.hh"
#include "sim/report.hh"

using namespace tapacs;

namespace
{

struct Workload
{
    std::string name;
    apps::AppDesign design;
};

std::vector<Workload>
paperWorkloads()
{
    std::vector<Workload> out;
    out.push_back({"stencil",
                   apps::buildStencil(apps::StencilConfig::scaled(64, 2))});
    out.push_back(
        {"pagerank",
         apps::buildPageRank(apps::PageRankConfig::scaled(
             apps::pagerankDatasets()[0], 2))});
    out.push_back(
        {"knn", apps::buildKnn(apps::KnnConfig::scaled(1'000'000, 2, 2))});
    apps::CnnConfig cnn;
    cnn.rows = 4;
    cnn.cols = 4;
    cnn.numFpgas = 2;
    cnn.batch = 4;
    cnn.numBlocks = 8;
    out.push_back({"cnn", apps::buildCnn(cnn)});
    return out;
}

/** The scripted scenario every workload is replayed under. */
FaultPlan
goldenFaultPlan()
{
    FaultPlan plan(20260807);
    plan.degradeLink(0, 1, 0.0, 0.5)
        .dropLink(0, 1, 0.0, 0.02)
        .flapLink(0, 1, 1e-3, 2e-3);
    return plan;
}

std::string
num(double v)
{
    return strprintf("%.12g", v);
}

void
appendSimJson(std::ostringstream &js, const TaskGraph &g,
              const sim::SimResult &run)
{
    js << "{\"makespan\":" << num(run.makespan)
       << ",\"completed\":" << (run.completed ? "true" : "false")
       << ",\"inter_device_bytes\":" << num(run.interDeviceBytes);
    int messages = 0, retries = 0, timeouts = 0, undelivered = 0;
    double backoff = 0.0, down_wait = 0.0;
    for (const sim::EdgeCommStats &ec : run.edgeComm) {
        messages += ec.messages;
        retries += ec.retries;
        timeouts += ec.timeouts;
        undelivered += ec.undelivered;
        backoff += ec.backoffSeconds;
        down_wait += ec.linkDownWaitSeconds;
    }
    js << ",\"net_messages\":" << messages << ",\"net_retries\":" << retries
       << ",\"net_timeouts\":" << timeouts
       << ",\"net_undelivered\":" << undelivered
       << ",\"net_backoff_seconds\":" << num(backoff)
       << ",\"net_link_down_seconds\":" << num(down_wait);
    js << ",\"fired_blocks\":[";
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (v > 0)
            js << ",";
        js << (run.firedBlocks.empty() ? g.vertex(v).work.numBlocks
                                       : run.firedBlocks[v]);
    }
    js << "]}";
}

/** Compile + healthy run + faulted run, rendered as canonical JSON. */
std::string
renderWorkload(Workload &w, cache::CompileCache *cc = nullptr)
{
    Cluster cluster = makePaperTestbed(2);
    CompileOptions opt;
    opt.mode = CompileMode::TapaCs;
    opt.numFpgas = 2;
    opt.cache = cc;
    const CompileResult r =
        compileProgram(w.design.graph, w.design.tasks, cluster, opt);
    if (!r.routable)
        fatal("golden workload '%s' failed to compile: %s",
              w.name.c_str(), r.failureReason.c_str());

    const TaskGraph &g = w.design.graph;
    std::ostringstream js;
    js << "{\"workload\":\"" << w.name << "\""
       << ",\"tasks\":" << g.numVertices() << ",\"fifos\":" << g.numEdges()
       << ",\"fpgas\":" << opt.numFpgas
       << ",\"fmax_hz\":" << num(r.fmax)
       << ",\"cut_traffic_bytes\":" << num(r.cutTrafficBytes);
    js << ",\"tasks_per_device\":[";
    std::vector<int> perDev(cluster.numDevices(), 0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ++perDev[r.partition.deviceOf[v]];
    for (size_t d = 0; d < perDev.size(); ++d)
        js << (d ? "," : "") << perDev[d];
    js << "]";

    sim::SimOptions sopt;
    sopt.exportMetrics = false;
    js << ",\"healthy\":";
    const sim::SimResult healthy =
        sim::simulate(g, cluster, r.partition, r.binding, r.pipeline,
                      r.deviceFmax, sopt);
    appendSimJson(js, g, healthy);

    const FaultPlan plan = goldenFaultPlan();
    sopt.faults = &plan;
    js << ",\"faulted\":";
    const sim::SimResult faulted =
        sim::simulate(g, cluster, r.partition, r.binding, r.pipeline,
                      r.deviceFmax, sopt);
    appendSimJson(js, g, faulted);
    js << "}\n";
    return js.str();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s' — run tools/update_goldens.sh?",
              path.c_str());
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: tapacs-golden --write|--check|--check-cached"
                 "|--check-cached-diff DIR\n");
    std::exit(2);
}

/**
 * The cache differential: render each workload cold (populating the
 * shared cache), then again from a freshly built design so every
 * solver phase is served from the cache. Both renders must match each
 * other byte for byte (a hit never changes an answer) and match the
 * golden (the cached flow is the same flow).
 */
int
checkCached(const std::string &dir, bool compareGolden)
{
    cache::CacheStore store;
    cache::CompileCache cc(store);
    int mismatches = 0;
    std::vector<Workload> cold_runs = paperWorkloads();
    std::vector<Workload> warm_runs = paperWorkloads();
    for (size_t i = 0; i < cold_runs.size(); ++i) {
        const std::string cold = renderWorkload(cold_runs[i], &cc);
        const std::string warm = renderWorkload(warm_runs[i], &cc);
        const std::string golden =
            compareGolden
                ? readFile(dir + "/" + cold_runs[i].name + ".json")
                : cold;
        if (warm != cold) {
            ++mismatches;
            std::printf("MISMATCH %s (warm differs from cold)\n"
                        "  cold: %s  warm: %s",
                        cold_runs[i].name.c_str(), cold.c_str(),
                        warm.c_str());
        } else if (warm != golden) {
            ++mismatches;
            std::printf("MISMATCH %s (cached differs from golden)\n"
                        "  golden:  %s  cached: %s",
                        cold_runs[i].name.c_str(), golden.c_str(),
                        warm.c_str());
        } else {
            std::printf("ok      %s (cold == warm%s)\n",
                        cold_runs[i].name.c_str(),
                        compareGolden ? " == golden" : "");
        }
    }
    if (mismatches > 0) {
        std::fprintf(stderr,
                     "%d workload(s) diverged under the compile "
                     "cache\n",
                     mismatches);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3)
        usage();
    const std::string mode = argv[1];
    const std::string dir = argv[2];
    if (mode != "--write" && mode != "--check" &&
        mode != "--check-cached" && mode != "--check-cached-diff")
        usage();
    if (mode == "--check-cached" || mode == "--check-cached-diff")
        return checkCached(dir, mode == "--check-cached");

    int mismatches = 0;
    for (Workload &w : paperWorkloads()) {
        const std::string rendered = renderWorkload(w);
        const std::string path = dir + "/" + w.name + ".json";
        if (mode == "--write") {
            std::ofstream out(path);
            if (!out)
                fatal("cannot write '%s'", path.c_str());
            out << rendered;
            std::printf("wrote %s\n", path.c_str());
        } else {
            const std::string golden = readFile(path);
            if (golden == rendered) {
                std::printf("ok      %s\n", w.name.c_str());
            } else {
                ++mismatches;
                std::printf("MISMATCH %s\n  golden:  %s  current: %s",
                            w.name.c_str(), golden.c_str(),
                            rendered.c_str());
            }
        }
    }
    if (mismatches > 0) {
        std::fprintf(stderr,
                     "%d golden file(s) diverged; if the change is "
                     "intentional, regenerate with "
                     "tools/update_goldens.sh and review the diff\n",
                     mismatches);
        return 1;
    }
    return 0;
}
