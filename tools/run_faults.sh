#!/usr/bin/env bash
# Build and run the fault-injection & recovery suites: the scripted
# fault scenarios (test_faults), the randomized transport/monotonicity
# properties (test_properties) and the golden-file diff — everything
# carrying the 'faults' ctest label — then replay the FPGA-death
# scenario with the floorplanner's worker pool at 1 and 4 threads and
# require bit-identical fault reports (the determinism acceptance
# gate).
#
# Usage: tools/run_faults.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"

cmake -S "${repo_root}" -B "${build_dir}"
cmake --build "${build_dir}" -j "$(nproc)"

ctest --test-dir "${build_dir}" -L faults --output-on-failure

# Cross-thread-count determinism smoke: the same scenario must render
# the same report bytes whatever TAPACS_THREADS says.
scenario="Replan.DeterministicAcrossWorkerThreadCounts"
TAPACS_THREADS=1 "${build_dir}/tests/test_faults" \
    --gtest_filter="${scenario}" --gtest_brief=1
TAPACS_THREADS=4 "${build_dir}/tests/test_faults" \
    --gtest_filter="${scenario}" --gtest_brief=1
echo "fault suites passed (serial and 4-thread runs)"
