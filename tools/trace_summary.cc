/**
 * @file
 * trace_summary: read a Chrome trace_event JSON produced by the
 * tapacs tracer (TAPACS_TRACE / CompileOptions::trace) and print a
 * per-phase and per-thread wall-time breakdown.
 *
 * Usage: trace-summary <trace.json>
 *
 * The parser handles the subset of trace JSON our TraceWriter emits —
 * an object with a "traceEvents" array of flat event objects — which
 * also covers traces round-tripped through Perfetto's JSON export.
 */

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"

namespace
{

/** One parsed trace event (the fields the summary needs). */
struct Event
{
    std::string phase;   // "X", "i", "C", "M"
    std::string name;
    std::string category;
    int tid = 0;
    double tsMicros = 0.0;
    double durMicros = 0.0;
    std::string threadName; // for "M" thread_name records
};

/**
 * Minimal JSON tokenizer for flat objects: walks the "traceEvents"
 * array and extracts each event's scalar fields. Nested objects
 * (args) are skipped structurally.
 */
class TraceParser
{
  public:
    explicit TraceParser(std::string text) : text_(std::move(text)) {}

    std::vector<Event>
    parse()
    {
        std::vector<Event> events;
        const size_t arr = text_.find("\"traceEvents\"");
        if (arr == std::string::npos)
            tapacs::fatal("no \"traceEvents\" array in trace file");
        pos_ = text_.find('[', arr);
        if (pos_ == std::string::npos)
            tapacs::fatal("malformed trace: traceEvents is not an array");
        ++pos_;
        skipSpace();
        while (pos_ < text_.size() && text_[pos_] != ']') {
            if (text_[pos_] == ',') {
                ++pos_;
                skipSpace();
                continue;
            }
            if (text_[pos_] != '{')
                tapacs::fatal("malformed trace: expected event object");
            events.push_back(parseEvent());
            skipSpace();
        }
        return events;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::string
    parseString()
    {
        tapacs_assert(text_[pos_] == '"');
        ++pos_;
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
                ++pos_;
                switch (text_[pos_]) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'u':
                    // \uXXXX: keep the escape verbatim; names the
                    // tracer emits never rely on it.
                    out += "\\u";
                    break;
                  default: out += text_[pos_];
                }
            } else {
                out += text_[pos_];
            }
            ++pos_;
        }
        ++pos_; // closing quote
        return out;
    }

    /** Skip any JSON value (used for args objects and unknown keys). */
    void
    skipValue()
    {
        skipSpace();
        const char c = text_[pos_];
        if (c == '"') {
            parseString();
            return;
        }
        if (c == '{' || c == '[') {
            const char close = c == '{' ? '}' : ']';
            int depth = 0;
            bool in_string = false;
            while (pos_ < text_.size()) {
                const char ch = text_[pos_];
                if (in_string) {
                    if (ch == '\\')
                        ++pos_;
                    else if (ch == '"')
                        in_string = false;
                } else if (ch == '"') {
                    in_string = true;
                } else if (ch == c) {
                    ++depth;
                } else if (ch == close) {
                    if (--depth == 0) {
                        ++pos_;
                        return;
                    }
                }
                ++pos_;
            }
            tapacs::fatal("malformed trace: unterminated value");
        }
        // Number / literal: scan to the next delimiter.
        while (pos_ < text_.size() && text_[pos_] != ',' &&
               text_[pos_] != '}' && text_[pos_] != ']')
            ++pos_;
    }

    Event
    parseEvent()
    {
        Event ev;
        tapacs_assert(text_[pos_] == '{');
        ++pos_;
        for (;;) {
            skipSpace();
            if (text_[pos_] == '}') {
                ++pos_;
                return ev;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            const std::string key = parseString();
            skipSpace();
            tapacs_assert(text_[pos_] == ':');
            ++pos_;
            skipSpace();
            if (key == "ph") {
                ev.phase = parseString();
            } else if (key == "name") {
                ev.name = parseString();
            } else if (key == "cat") {
                ev.category = parseString();
            } else if (key == "tid") {
                ev.tid = static_cast<int>(parseNumber());
            } else if (key == "ts") {
                ev.tsMicros = parseNumber();
            } else if (key == "dur") {
                ev.durMicros = parseNumber();
            } else if (key == "args" && ev.phase == "M") {
                ev.threadName = parseThreadNameArg();
            } else {
                skipValue();
            }
        }
    }

    double
    parseNumber()
    {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        return std::stod(text_.substr(start, pos_ - start));
    }

    /** Parse {"name":"..."} from a thread_name metadata record. */
    std::string
    parseThreadNameArg()
    {
        tapacs_assert(text_[pos_] == '{');
        const size_t save = pos_;
        std::string found;
        ++pos_;
        for (;;) {
            skipSpace();
            if (text_[pos_] == '}') {
                ++pos_;
                break;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            const std::string key = parseString();
            skipSpace();
            tapacs_assert(text_[pos_] == ':');
            ++pos_;
            skipSpace();
            if (key == "name")
                found = parseString();
            else
                skipValue();
        }
        (void)save;
        return found;
    }

    std::string text_;
    size_t pos_ = 0;
};

std::string
formatMs(double micros)
{
    return tapacs::strprintf("%.3f", micros / 1000.0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: %s <trace.json>\n"
                     "  Summarizes a Chrome trace produced via "
                     "TAPACS_TRACE or CompileOptions::trace.\n",
                     argv[0]);
        return 2;
    }

    std::ifstream in(argv[1], std::ios::binary);
    if (!in)
        tapacs::fatal("cannot open '%s'", argv[1]);
    std::ostringstream ss;
    ss << in.rdbuf();

    TraceParser parser(ss.str());
    const std::vector<Event> events = parser.parse();

    std::map<int, std::string> thread_names;
    struct Accum
    {
        double totalMicros = 0.0;
        std::int64_t count = 0;
        double minTs = 0.0;
        double maxEnd = 0.0;
        bool any = false;

        void
        add(const Event &ev)
        {
            totalMicros += ev.durMicros;
            ++count;
            if (!any || ev.tsMicros < minTs)
                minTs = ev.tsMicros;
            if (!any || ev.tsMicros + ev.durMicros > maxEnd)
                maxEnd = ev.tsMicros + ev.durMicros;
            any = true;
        }
    };
    // Keyed by span name / thread id; std::map keeps the output order
    // stable across runs.
    std::map<std::string, Accum> by_phase;
    std::map<int, Accum> by_thread;
    // Parallel-simulator logical processes: one "sim.lp.dN" span per
    // LP per active window, so busy ms / spans here shows the load
    // balance across devices.
    std::map<std::string, Accum> by_lp;
    std::int64_t complete_events = 0;

    for (const Event &ev : events) {
        if (ev.phase == "M" && ev.name == "thread_name") {
            thread_names[ev.tid] = ev.threadName;
            continue;
        }
        if (ev.phase != "X")
            continue;
        ++complete_events;
        by_thread[ev.tid].add(ev);
        if (ev.category == "compile" || ev.name.rfind("phase", 0) == 0)
            by_phase[ev.name].add(ev);
        if (ev.category == "sim" && ev.name.rfind("sim.lp.", 0) == 0)
            by_lp[ev.name].add(ev);
    }

    if (complete_events == 0) {
        std::printf("trace '%s' holds no complete ('X') events\n",
                    argv[1]);
        return 0;
    }

    if (!by_phase.empty()) {
        tapacs::TextTable phases({"phase", "wall ms", "spans"});
        phases.setTitle("Per-phase wall time");
        double total = 0.0;
        for (const auto &[name, acc] : by_phase) {
            phases.addRow({name, formatMs(acc.totalMicros),
                           std::to_string(acc.count)});
            total += acc.totalMicros;
        }
        phases.addSeparator();
        phases.addRow({"total", formatMs(total), ""});
        phases.print();
        std::printf("\n");
    }

    if (!by_lp.empty()) {
        tapacs::TextTable lps(
            {"logical process", "busy ms", "windows",
             "first..last ms"});
        lps.setTitle("Parallel-sim LP breakdown");
        for (const auto &[name, acc] : by_lp)
            lps.addRow({name, formatMs(acc.totalMicros),
                        std::to_string(acc.count),
                        formatMs(acc.minTs) + ".." +
                            formatMs(acc.maxEnd)});
        lps.print();
        std::printf("\n");
    }

    tapacs::TextTable threads(
        {"thread", "busy ms", "spans", "first..last ms"});
    threads.setTitle("Per-thread span time");
    for (const auto &[tid, acc] : by_thread) {
        std::string name = thread_names.count(tid)
                               ? thread_names[tid]
                               : "tid-" + std::to_string(tid);
        threads.addRow({name, formatMs(acc.totalMicros),
                        std::to_string(acc.count),
                        formatMs(acc.minTs) + ".." +
                            formatMs(acc.maxEnd)});
    }
    threads.print();
    return 0;
}
