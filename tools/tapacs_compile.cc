/**
 * @file
 * tapacs-compile — the command-line front end.
 *
 * Reads a task graph in the serialized line format (see
 * graph/serialize.hh; vertex areas are taken as post-synthesis
 * values), runs the requested flow, and writes the step-7 artifacts:
 * one placement-constraint Tcl per device, the cluster manifest, and
 * optionally a simulated-run timeline CSV.
 *
 * Usage:
 *   tapacs-compile GRAPH_FILE [options]
 *     --fpgas N          devices to target (default 1)
 *     --mode M           vitis | tapa | tapacs (default tapacs)
 *     --topology T       chain|ring|star|mesh|hypercube|full
 *     --device D         U55C | U250 | U280 (default U55C)
 *     --threshold X      eq. 1 utilization threshold (default 0.70)
 *     --out DIR          write constraints/manifest there (default .)
 *     --simulate         run the dataflow simulator and report latency
 *     --timeline FILE    write the firing timeline CSV (implies
 *                        --simulate)
 *     --solver S         level-1 engine: exact | multilevel
 *     --replicate        plan logic replication in the level-1 solve
 *     --coarse-limit N   level-1 coarsening target (default 36)
 *     --partition-only   stop after level-1 floorplanning and report
 *                        the partition (cost, cut, per-device load);
 *                        the scale path — cluster-scale graphs
 *                        partition in seconds while the full
 *                        placement flow is hours
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "compiler/compiler.hh"
#include "compiler/constraints.hh"
#include "graph/serialize.hh"
#include "partition/multilevel.hh"
#include "sim/dataflow_sim.hh"

using namespace tapacs;

namespace
{

struct CliOptions
{
    std::string graphFile;
    int fpgas = 1;
    CompileMode mode = CompileMode::TapaCs;
    TopologyKind topology = TopologyKind::Ring;
    std::string device = "U55C";
    double threshold = 0.70;
    std::string outDir = ".";
    bool simulate = false;
    std::string timelineFile;
    L1Backend solver = L1Backend::Exact;
    bool replicate = false;
    int coarseLimit = 0;
    bool partitionOnly = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: tapacs-compile GRAPH_FILE [--fpgas N] "
                 "[--mode vitis|tapa|tapacs] [--topology T] "
                 "[--device U55C|U250|U280] [--threshold X] "
                 "[--out DIR] [--simulate] [--timeline FILE] "
                 "[--solver exact|multilevel] [--replicate] "
                 "[--coarse-limit N] [--partition-only]\n");
    std::exit(2);
}

TopologyKind
parseTopology(const std::string &name)
{
    if (name == "chain")
        return TopologyKind::Chain;
    if (name == "ring")
        return TopologyKind::Ring;
    if (name == "star")
        return TopologyKind::Star;
    if (name == "mesh")
        return TopologyKind::Mesh2D;
    if (name == "hypercube")
        return TopologyKind::Hypercube;
    if (name == "full")
        return TopologyKind::FullyConnected;
    fatal("unknown topology '%s'", name.c_str());
}

CompileMode
parseMode(const std::string &name)
{
    if (name == "vitis")
        return CompileMode::VitisBaseline;
    if (name == "tapa")
        return CompileMode::TapaSingle;
    if (name == "tapacs")
        return CompileMode::TapaCs;
    fatal("unknown mode '%s'", name.c_str());
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--fpgas")
            opt.fpgas = std::atoi(next().c_str());
        else if (arg == "--mode")
            opt.mode = parseMode(next());
        else if (arg == "--topology")
            opt.topology = parseTopology(next());
        else if (arg == "--device")
            opt.device = next();
        else if (arg == "--threshold")
            opt.threshold = std::atof(next().c_str());
        else if (arg == "--out")
            opt.outDir = next();
        else if (arg == "--simulate")
            opt.simulate = true;
        else if (arg == "--timeline") {
            opt.timelineFile = next();
            opt.simulate = true;
        } else if (arg == "--solver") {
            const std::string name = next();
            if (name == "exact")
                opt.solver = L1Backend::Exact;
            else if (name == "multilevel")
                opt.solver = L1Backend::Multilevel;
            else
                fatal("unknown solver '%s'", name.c_str());
        } else if (arg == "--replicate") {
            opt.replicate = true;
        } else if (arg == "--partition-only") {
            opt.partitionOnly = true;
        } else if (arg == "--coarse-limit") {
            opt.coarseLimit = std::atoi(next().c_str());
            if (opt.coarseLimit < 2)
                fatal("--coarse-limit must be >= 2");
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage();
        } else if (opt.graphFile.empty()) {
            opt.graphFile = arg;
        } else {
            usage();
        }
    }
    if (opt.graphFile.empty())
        usage();
    if (opt.fpgas < 1)
        fatal("--fpgas must be >= 1");
    return opt;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
}

void
writeFile(const std::string &path, const std::string &body)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    out << body;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseArgs(argc, argv);

    TaskGraph g = parseTaskGraph(readFile(opt.graphFile));
    g.validate();
    inform("loaded '%s': %d tasks, %d FIFOs", g.name().c_str(),
           g.numVertices(), g.numEdges());

    Cluster cluster(makeDeviceByName(opt.device),
                    Topology(opt.topology, opt.fpgas));

    if (opt.partitionOnly) {
        InterFpgaOptions io;
        io.backend = opt.solver;
        io.replicate = opt.replicate;
        if (opt.coarseLimit > 0)
            io.coarseLimit = opt.coarseLimit;
        io.threshold = opt.threshold;
        io.channelsPerDevice = cluster.device().memory().channels;
        const InterFpgaResult r = partition::solveL1(g, cluster, io);
        if (!r.feasible) {
            std::fprintf(stderr, "partitioning failed: %s\n",
                         r.status.message().c_str());
            return 1;
        }
        std::printf("solver:    %s (%d level%s, coarse %d)\n",
                    toString(io.backend), r.levels,
                    r.levels == 1 ? "" : "s", r.coarseVertices);
        std::printf("L1 time:   %.3fs\n", r.elapsedSeconds);
        std::printf("cost:      %.0f (eq. 2)\n", r.cost);
        std::printf("cut:       %s, %.0f bits of FIFO width\n",
                    formatBytes(r.cutTrafficBytes).c_str(),
                    interFpgaCutWidthBits(g, r.partition));
        if (opt.replicate) {
            std::printf("replicas:  %d\n",
                        r.replication.totalReplicas());
        }
        const std::vector<ResourceVector> areas =
            perDeviceArea(g, cluster, r.partition);
        for (DeviceId d = 0; d < cluster.numDevices(); ++d) {
            std::printf("  device %d: %.1f%% LUT\n", d,
                        areas[d].utilization(
                            ResourceKind::Lut,
                            cluster.device().totalResources()) *
                            100.0);
        }
        return 0;
    }

    CompileOptions copt;
    copt.mode = opt.mode;
    copt.numFpgas = opt.fpgas;
    copt.topology = opt.topology;
    copt.threshold = opt.threshold;
    copt.inter.backend = opt.solver;
    copt.inter.replicate = opt.replicate;
    if (opt.coarseLimit > 0)
        copt.inter.coarseLimit = opt.coarseLimit;

    const CompileResult result = compile(g, cluster, copt);
    if (!result.routable) {
        std::fprintf(stderr, "compilation failed: %s\n",
                     result.failureReason.c_str());
        return 1;
    }

    std::printf("mode:      %s\n", toString(opt.mode));
    std::printf("devices:   %d x %s (%s)\n", opt.fpgas,
                opt.device.c_str(), toString(opt.topology));
    std::printf("clock:     %s\n", formatFrequency(result.fmax).c_str());
    std::printf("floorplan: L1 %.2fs, L2 %.2fs\n", result.l1Seconds,
                result.l2Seconds);
    std::printf("cut:       %s across devices\n",
                formatBytes(result.cutTrafficBytes).c_str());
    if (result.replicated()) {
        std::printf("replicas:  %d task cop%s added by logic "
                    "replication\n",
                    result.replication.totalReplicas(),
                    result.replication.totalReplicas() == 1 ? "y"
                                                            : "ies");
    }

    // Every emitted artifact describes the design as it will be
    // built: the replication-expanded graph when phase 3 produced
    // one, the input graph otherwise.
    const TaskGraph &dg = result.replicated() ? result.expandedGraph : g;
    for (DeviceId d = 0; d < cluster.numDevices(); ++d) {
        const std::string path =
            strprintf("%s/constraints_dev%d.tcl", opt.outDir.c_str(), d);
        writeFile(path, emitConstraintsTcl(dg, cluster, result, d));
        std::printf("wrote %s\n", path.c_str());
    }
    const std::string manifest_path = opt.outDir + "/cluster.manifest";
    writeFile(manifest_path, emitClusterManifest(dg, cluster, result));
    std::printf("wrote %s\n", manifest_path.c_str());

    if (opt.simulate) {
        sim::SimOptions sopt;
        sopt.recordTimeline = !opt.timelineFile.empty();
        const sim::SimResult run =
            sim::simulate(dg, cluster, result.partition, result.binding,
                          result.pipeline, result.deviceFmax, sopt);
        std::printf("simulated latency: %s\n",
                    formatSeconds(run.makespan).c_str());
        for (DeviceId d = 0; d < cluster.numDevices(); ++d) {
            std::printf("  device %d busy %.1f%%\n", d,
                        run.deviceUtilization(d) * 100.0);
        }
        if (!opt.timelineFile.empty()) {
            writeFile(opt.timelineFile, sim::timelineCsv(dg, run));
            std::printf("wrote %s\n", opt.timelineFile.c_str());
        }
    }
    return 0;
}
