#!/usr/bin/env bash
# Build the ThreadSanitizer configuration and run the tsan-labeled
# test suites (the concurrency tests added with the parallel
# floorplanning engine: thread pool, parallel branch-and-bound,
# concurrent floorplan passes).
#
# Usage: tools/run_tsan.sh [build-dir]
#   build-dir defaults to build-tsan (matches the 'tsan' CMake preset).
#
# Equivalent presets workflow:
#   cmake --preset tsan && cmake --build --preset tsan
#   ctest --preset tsan
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-tsan"}"

cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTAPACS_SANITIZE=thread
cmake --build "${build_dir}" -j "$(nproc)"

# Run every suite that exercises shared-state concurrency. Halt on
# first failure so the tsan report sits at the end of the output.
ctest --test-dir "${build_dir}" -L tsan --output-on-failure
