/**
 * @file
 * tapacs-graphgen — emit benchmark task graphs in the serialized
 * format consumed by tapacs-compile.
 *
 * The vertex areas are produced by running the HLS estimator over the
 * app's task IRs, so the emitted file is a complete post-synthesis
 * design description.
 *
 * Usage:
 *   tapacs-graphgen APP [options] > design.tg
 *     APP               stencil | pagerank | knn | cnn | synth
 *     --fpgas N         scale the design for N devices (default 1)
 *     --iters I         stencil iterations (default 64)
 *     --dataset NAME    pagerank network (default cit-Patents)
 *     --n N --d D       knn dataset size / dimension
 *     --vitis           cnn: emit the 13x4 Vitis-baseline grid
 *     --modules N       synth: module count (default 5000)
 *     --seed S          synth: RNG seed (default 1)
 *     --alpha A         synth: fanout power-law exponent
 *     --area-mean X     synth: mean module area in LUTs
 *
 * The synth app stamps areas directly (no HLS pass) — it exists to
 * feed the multilevel partitioner graphs far beyond the four paper
 * workloads (up to ~50k modules).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/cnn.hh"
#include "apps/knn.hh"
#include "apps/pagerank.hh"
#include "apps/stencil.hh"
#include "apps/synth.hh"
#include "common/logging.hh"
#include "graph/serialize.hh"
#include "hls/synthesis.hh"

using namespace tapacs;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: tapacs-graphgen stencil|pagerank|knn|cnn|synth "
                 "[--fpgas N] [--iters I] [--dataset NAME] [--n N] "
                 "[--d D] [--vitis] [--modules N] [--seed S] "
                 "[--alpha A] [--area-mean X]\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string app_name = argv[1];

    int fpgas = 1, iters = 64, d = 2;
    std::int64_t n = 4'000'000;
    std::string dataset = "cit-Patents";
    bool vitis = false;
    int modules = 5000;
    unsigned long long seed = 1;
    double alpha = 0.0, area_mean = 0.0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--fpgas")
            fpgas = std::atoi(next().c_str());
        else if (arg == "--iters")
            iters = std::atoi(next().c_str());
        else if (arg == "--dataset")
            dataset = next();
        else if (arg == "--n")
            n = std::atoll(next().c_str());
        else if (arg == "--d")
            d = std::atoi(next().c_str());
        else if (arg == "--vitis")
            vitis = true;
        else if (arg == "--modules")
            modules = std::atoi(next().c_str());
        else if (arg == "--seed")
            seed = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--alpha")
            alpha = std::atof(next().c_str());
        else if (arg == "--area-mean")
            area_mean = std::atof(next().c_str());
        else
            usage();
    }

    apps::AppDesign app;
    if (app_name == "stencil") {
        app = apps::buildStencil(apps::StencilConfig::scaled(iters, fpgas));
    } else if (app_name == "pagerank") {
        app = apps::buildPageRank(apps::PageRankConfig::scaled(
            apps::pagerankDataset(dataset), fpgas));
    } else if (app_name == "knn") {
        app = apps::buildKnn(apps::KnnConfig::scaled(n, d, fpgas));
    } else if (app_name == "cnn") {
        app = apps::buildCnn(apps::CnnConfig::scaled(fpgas, vitis));
    } else if (app_name == "synth") {
        apps::SynthConfig cfg = apps::SynthConfig::scaled(modules, seed);
        if (alpha > 0.0)
            cfg.fanoutAlpha = alpha;
        if (area_mean > 0.0)
            cfg.areaMeanLut = area_mean;
        app = apps::buildSynthetic(cfg);
    } else {
        usage();
    }

    // Step 2: synthesize so the emitted file carries real areas
    // (synth graphs come pre-stamped — no task IRs to estimate).
    if (!app.tasks.empty()) {
        hls::ProgramSynthesis synth = hls::synthesizeAll(app.tasks);
        hls::applySynthesis(app.graph, synth);
    }
    app.graph.validate();

    std::fputs(serializeTaskGraph(app.graph).c_str(), stdout);
    return 0;
}
