/**
 * @file
 * tapacs-graphgen — emit benchmark task graphs in the serialized
 * format consumed by tapacs-compile.
 *
 * The vertex areas are produced by running the HLS estimator over the
 * app's task IRs, so the emitted file is a complete post-synthesis
 * design description.
 *
 * Usage:
 *   tapacs-graphgen APP [options] > design.tg
 *     APP               stencil | pagerank | knn | cnn
 *     --fpgas N         scale the design for N devices (default 1)
 *     --iters I         stencil iterations (default 64)
 *     --dataset NAME    pagerank network (default cit-Patents)
 *     --n N --d D       knn dataset size / dimension
 *     --vitis           cnn: emit the 13x4 Vitis-baseline grid
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/cnn.hh"
#include "apps/knn.hh"
#include "apps/pagerank.hh"
#include "apps/stencil.hh"
#include "common/logging.hh"
#include "graph/serialize.hh"
#include "hls/synthesis.hh"

using namespace tapacs;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: tapacs-graphgen stencil|pagerank|knn|cnn "
                 "[--fpgas N] [--iters I] [--dataset NAME] [--n N] "
                 "[--d D] [--vitis]\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string app_name = argv[1];

    int fpgas = 1, iters = 64, d = 2;
    std::int64_t n = 4'000'000;
    std::string dataset = "cit-Patents";
    bool vitis = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--fpgas")
            fpgas = std::atoi(next().c_str());
        else if (arg == "--iters")
            iters = std::atoi(next().c_str());
        else if (arg == "--dataset")
            dataset = next();
        else if (arg == "--n")
            n = std::atoll(next().c_str());
        else if (arg == "--d")
            d = std::atoi(next().c_str());
        else if (arg == "--vitis")
            vitis = true;
        else
            usage();
    }

    apps::AppDesign app;
    if (app_name == "stencil") {
        app = apps::buildStencil(apps::StencilConfig::scaled(iters, fpgas));
    } else if (app_name == "pagerank") {
        app = apps::buildPageRank(apps::PageRankConfig::scaled(
            apps::pagerankDataset(dataset), fpgas));
    } else if (app_name == "knn") {
        app = apps::buildKnn(apps::KnnConfig::scaled(n, d, fpgas));
    } else if (app_name == "cnn") {
        app = apps::buildCnn(apps::CnnConfig::scaled(fpgas, vitis));
    } else {
        usage();
    }

    // Step 2: synthesize so the emitted file carries real areas.
    hls::ProgramSynthesis synth = hls::synthesizeAll(app.tasks);
    hls::applySynthesis(app.graph, synth);
    app.graph.validate();

    std::fputs(serializeTaskGraph(app.graph).c_str(), stdout);
    return 0;
}
