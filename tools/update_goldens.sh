#!/usr/bin/env bash
# Regenerate the golden-file regression artifacts in tests/golden/
# (byte-exact compile+sim results for the four paper workloads,
# healthy and under the seeded fault scenario).
#
# Run this only after an *intentional* model change, then review the
# resulting diff like any other code change:
#   tools/update_goldens.sh && git diff tests/golden
#
# Usage: tools/update_goldens.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"

cmake -S "${repo_root}" -B "${build_dir}"
cmake --build "${build_dir}" -j "$(nproc)" --target tapacs-golden

"${build_dir}/tools/tapacs-golden" --write "${repo_root}/tests/golden"
"${build_dir}/tools/tapacs-golden" --check "${repo_root}/tests/golden"
