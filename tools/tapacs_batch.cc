/**
 * @file
 * tapacs-batch — batch compile driver over one shared compile cache.
 *
 * Reads a manifest of compile requests and drains them through the
 * shared thread pool, every request hitting the same content-addressed
 * CompileCache — the serving shape of a multi-tenant compile farm,
 * where near-duplicate requests (same design, re-submitted or slightly
 * retuned) dominate. After the drain the driver prints a per-request
 * table (wall seconds, clock, cut traffic) and the `tapacs.cache.*`
 * metrics so hit rates are visible at a glance.
 *
 * Manifest format (one request per line, '#' comments):
 *
 *   request NAME workload=stencil|pagerank|knn|cnn [key=value...]
 *   request NAME graph=FILE [key=value...]
 *
 * keys: fpgas=N (default 2)        devices to target
 *       mode=vitis|tapa|tapacs     flow (default tapacs)
 *       topology=chain|ring|...    wiring (default ring)
 *       threshold=X                eq. 1 threshold (default 0.70)
 *       scale=N                    workload size knob (stencil
 *                                  iterations / KNN points; 0 = the
 *                                  golden-harness default)
 *       repeat=N                   enqueue N copies (cache fodder)
 *
 * Usage:
 *   tapacs-batch MANIFEST [--threads N] [--repeat N] [--warm-start]
 *                [--no-cache] [--cache-dir DIR]
 *
 *   --threads N    concurrent requests (default: pool size)
 *   --repeat N     global multiplier on every request's repeat
 *   --warm-start   enable family warm-start hints (see
 *                  CompileOptions::cacheWarmStart; changes results on
 *                  near-miss requests, so off by default)
 *   --no-cache     drop the cache entirely (baseline timing)
 *   --cache-dir D  use a disk tier at D (same as TAPACS_CACHE_DIR)
 */

#include <cstdio>
#include <cstring>
#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/cnn.hh"
#include "apps/knn.hh"
#include "apps/pagerank.hh"
#include "apps/stencil.hh"
#include "cache/compile_cache.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "common/units.hh"
#include "compiler/compiler.hh"
#include "graph/serialize.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace tapacs;

namespace
{

struct Request
{
    std::string name;
    std::string workload; ///< builtin app name, or empty for graph=
    std::string graphFile;
    int fpgas = 2;
    CompileMode mode = CompileMode::TapaCs;
    TopologyKind topology = TopologyKind::Ring;
    double threshold = 0.70;
    std::int64_t scale = 0;
    int repeat = 1;
};

struct CliOptions
{
    std::string manifest;
    int threads = 0;
    int repeat = 1;
    bool warmStart = false;
    bool noCache = false;
    std::string cacheDir;
};

struct RequestOutcome
{
    bool routable = false;
    std::string failureReason;
    double seconds = 0.0;
    Hertz fmax = 0.0;
    double cutTrafficBytes = 0.0;
    int tasks = 0;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: tapacs-batch MANIFEST [--threads N] "
                 "[--repeat N] [--warm-start] [--no-cache] "
                 "[--cache-dir DIR]\n");
    std::exit(2);
}

TopologyKind
parseTopology(const std::string &name)
{
    if (name == "chain")
        return TopologyKind::Chain;
    if (name == "ring")
        return TopologyKind::Ring;
    if (name == "star")
        return TopologyKind::Star;
    if (name == "mesh")
        return TopologyKind::Mesh2D;
    if (name == "hypercube")
        return TopologyKind::Hypercube;
    if (name == "full")
        return TopologyKind::FullyConnected;
    fatal("unknown topology '%s'", name.c_str());
}

CompileMode
parseMode(const std::string &name)
{
    if (name == "vitis")
        return CompileMode::VitisBaseline;
    if (name == "tapa")
        return CompileMode::TapaSingle;
    if (name == "tapacs")
        return CompileMode::TapaCs;
    fatal("unknown mode '%s'", name.c_str());
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--threads")
            opt.threads = std::atoi(next().c_str());
        else if (arg == "--repeat")
            opt.repeat = std::atoi(next().c_str());
        else if (arg == "--warm-start")
            opt.warmStart = true;
        else if (arg == "--no-cache")
            opt.noCache = true;
        else if (arg == "--cache-dir")
            opt.cacheDir = next();
        else if (arg == "--help" || arg == "-h")
            usage();
        else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage();
        } else if (opt.manifest.empty()) {
            opt.manifest = arg;
        } else {
            usage();
        }
    }
    if (opt.manifest.empty())
        usage();
    if (opt.repeat < 1)
        fatal("--repeat must be >= 1");
    return opt;
}

std::vector<Request>
parseManifest(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open manifest '%s'", path.c_str());
    std::vector<Request> out;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream tokens(line);
        std::string word;
        if (!(tokens >> word))
            continue;
        if (word != "request")
            fatal("%s:%d: expected 'request', got '%s'", path.c_str(),
                  lineno, word.c_str());
        Request req;
        if (!(tokens >> req.name))
            fatal("%s:%d: request needs a name", path.c_str(), lineno);
        while (tokens >> word) {
            const std::size_t eq = word.find('=');
            if (eq == std::string::npos)
                fatal("%s:%d: expected key=value, got '%s'",
                      path.c_str(), lineno, word.c_str());
            const std::string key = word.substr(0, eq);
            const std::string value = word.substr(eq + 1);
            if (key == "workload")
                req.workload = value;
            else if (key == "graph")
                req.graphFile = value;
            else if (key == "fpgas")
                req.fpgas = std::atoi(value.c_str());
            else if (key == "mode")
                req.mode = parseMode(value);
            else if (key == "topology")
                req.topology = parseTopology(value);
            else if (key == "threshold")
                req.threshold = std::atof(value.c_str());
            else if (key == "scale")
                req.scale = std::atoll(value.c_str());
            else if (key == "repeat")
                req.repeat = std::atoi(value.c_str());
            else
                fatal("%s:%d: unknown key '%s'", path.c_str(), lineno,
                      key.c_str());
        }
        if (req.workload.empty() == req.graphFile.empty())
            fatal("%s:%d: request '%s' needs exactly one of workload= "
                  "or graph=",
                  path.c_str(), lineno, req.name.c_str());
        if (req.fpgas < 1 || req.repeat < 1)
            fatal("%s:%d: fpgas and repeat must be >= 1", path.c_str(),
                  lineno);
        out.push_back(std::move(req));
    }
    if (out.empty())
        fatal("manifest '%s' contains no requests", path.c_str());
    return out;
}

/** Build a builtin workload at the request's scale (0 = the same
 *  small configurations the golden harness pins). */
apps::AppDesign
buildWorkload(const Request &req)
{
    if (req.workload == "stencil") {
        const int iters = req.scale > 0 ? static_cast<int>(req.scale) : 64;
        return apps::buildStencil(
            apps::StencilConfig::scaled(iters, req.fpgas));
    }
    if (req.workload == "pagerank") {
        return apps::buildPageRank(apps::PageRankConfig::scaled(
            apps::pagerankDatasets()[0], req.fpgas));
    }
    if (req.workload == "knn") {
        const std::int64_t n = req.scale > 0 ? req.scale : 1'000'000;
        return apps::buildKnn(apps::KnnConfig::scaled(n, 2, req.fpgas));
    }
    if (req.workload == "cnn") {
        apps::CnnConfig cnn;
        cnn.rows = 4;
        cnn.cols = 4;
        cnn.numFpgas = req.fpgas;
        cnn.batch = 4;
        cnn.numBlocks = 8;
        return apps::buildCnn(cnn);
    }
    fatal("unknown workload '%s' (want stencil|pagerank|knn|cnn)",
          req.workload.c_str());
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
}

/** One request execution, end to end, on the calling thread. */
RequestOutcome
runRequest(const Request &req, cache::CompileCache *cc, bool warmStart)
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    obs::TraceSpan span("batch", "request." + req.name);

    CompileOptions opt;
    opt.mode = req.mode;
    opt.numFpgas = req.fpgas;
    opt.topology = req.topology;
    opt.threshold = req.threshold;
    opt.cache = cc;
    opt.cacheWarmStart = warmStart;

    Cluster cluster = makePaperTestbed(req.fpgas);
    CompileResult result;
    int tasks = 0;
    if (!req.graphFile.empty()) {
        TaskGraph g = parseTaskGraph(readFile(req.graphFile));
        g.validate();
        tasks = g.numVertices();
        result = compile(g, cluster, opt);
    } else {
        apps::AppDesign design = buildWorkload(req);
        tasks = design.graph.numVertices();
        result =
            compileProgram(design.graph, design.tasks, cluster, opt);
    }

    RequestOutcome out;
    out.routable = result.routable;
    out.failureReason = result.failureReason;
    out.fmax = result.fmax;
    out.cutTrafficBytes = result.cutTrafficBytes;
    out.tasks = tasks;
    out.seconds =
        std::chrono::duration<double>(clock::now() - t0).count();
    span.arg("seconds", out.seconds)
        .arg("routable", static_cast<std::int64_t>(out.routable));
    obs::MetricsRegistry::global()
        .histogram("tapacs.batch.request_seconds",
                   {0.01, 0.1, 0.5, 1.0, 5.0, 30.0})
        .observe(out.seconds);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseArgs(argc, argv);
    const std::vector<Request> manifest = parseManifest(opt.manifest);

    // One flat execution list: per-request repeats x the global
    // multiplier, in manifest order.
    std::vector<const Request *> executions;
    for (const Request &req : manifest) {
        for (int r = 0; r < req.repeat * opt.repeat; ++r)
            executions.push_back(&req);
    }

    cache::CompileCache *cc = nullptr;
    std::unique_ptr<cache::CacheStore> diskStore;
    std::unique_ptr<cache::CompileCache> diskCache;
    if (!opt.noCache) {
        if (!opt.cacheDir.empty()) {
            cache::CacheStore::Options sopt;
            sopt.directory = opt.cacheDir;
            diskStore =
                std::make_unique<cache::CacheStore>(std::move(sopt));
            diskCache = std::make_unique<cache::CompileCache>(*diskStore);
            cc = diskCache.get();
        } else {
            cc = &cache::CompileCache::global();
        }
    }

    const int threads =
        opt.threads > 0 ? opt.threads : ThreadPool::defaultThreadCount();
    inform("tapacs-batch: %zu request(s) (%zu execution(s)), %d "
           "thread(s), cache %s",
           manifest.size(), executions.size(), threads,
           cc == nullptr ? "off"
                         : (cc->store().directory().empty()
                                ? "memory"
                                : cc->store().directory().c_str()));

    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    std::vector<RequestOutcome> outcomes(executions.size());
    if (threads == 1) {
        for (std::size_t i = 0; i < executions.size(); ++i)
            outcomes[i] = runRequest(*executions[i], cc, opt.warmStart);
    } else {
        // Drainer tasks on the shared pool: at most `threads` requests
        // in flight, each free to use the pool's helping parallelism
        // internally (synthesis, per-device floorplans).
        std::atomic<std::size_t> next{0};
        TaskGroup group;
        const int drainers =
            std::min<int>(threads, static_cast<int>(executions.size()));
        for (int t = 0; t < drainers; ++t) {
            group.run([&]() {
                while (true) {
                    const std::size_t i = next.fetch_add(1);
                    if (i >= executions.size())
                        return;
                    outcomes[i] =
                        runRequest(*executions[i], cc, opt.warmStart);
                }
            });
        }
        group.wait();
    }
    const double wall =
        std::chrono::duration<double>(clock::now() - t0).count();

    std::printf("%-20s %-10s %6s %9s %12s %14s\n", "request", "status",
                "tasks", "seconds", "fmax", "cut");
    int failures = 0;
    for (std::size_t i = 0; i < executions.size(); ++i) {
        const RequestOutcome &o = outcomes[i];
        if (!o.routable)
            ++failures;
        std::printf("%-20s %-10s %6d %9.3f %12s %14s\n",
                    executions[i]->name.c_str(),
                    o.routable ? "ok" : "FAILED", o.tasks, o.seconds,
                    o.routable ? formatFrequency(o.fmax).c_str() : "-",
                    o.routable
                        ? formatBytes(o.cutTrafficBytes).c_str()
                        : o.failureReason.c_str());
    }
    std::printf("\n%zu execution(s) in %.3fs wall\n", executions.size(),
                wall);

    const obs::MetricsSnapshot cacheMetrics =
        obs::MetricsRegistry::global().snapshot().filterPrefix(
            "tapacs.cache.");
    if (!cacheMetrics.counters.empty() || !cacheMetrics.gauges.empty()) {
        const std::int64_t hits =
            cacheMetrics.hasCounter("tapacs.cache.hits")
                ? cacheMetrics.counterValue("tapacs.cache.hits")
                : 0;
        const std::int64_t misses =
            cacheMetrics.hasCounter("tapacs.cache.misses")
                ? cacheMetrics.counterValue("tapacs.cache.misses")
                : 0;
        std::printf("\n%s", cacheMetrics.renderTable().c_str());
        if (hits + misses > 0) {
            std::printf("cache hit rate: %.1f%% (%lld/%lld)\n",
                        100.0 * static_cast<double>(hits) /
                            static_cast<double>(hits + misses),
                        (long long)hits, (long long)(hits + misses));
        }
    }
    return failures == 0 ? 0 : 1;
}
