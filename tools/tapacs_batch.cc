/**
 * @file
 * tapacs-batch — batch compile driver over one shared compile cache,
 * served through the admission-controlled CompileService.
 *
 * Reads a manifest of compile requests and drains them through the
 * service's worker pool, every request hitting the same
 * content-addressed CompileCache — the serving shape of a multi-tenant
 * compile farm. The service layer adds the robustness contract: every
 * request yields a *typed* outcome (ok / degraded / INVALID_INPUT /
 * INFEASIBLE / DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED / ...), malformed
 * manifest lines become per-line diagnostics instead of a dead
 * process, expired requests are cancelled cooperatively by a watchdog
 * and still return their best degraded result, and an open circuit
 * breaker sheds load. After the drain the driver prints a per-request
 * table plus the `tapacs.cache.*` and `tapacs.serve.*` metrics.
 *
 * Manifest format: see serve/manifest.hh (request NAME key=value...,
 * including per-request deadline_ms=N).
 *
 * Usage:
 *   tapacs-batch MANIFEST [--threads N] [--repeat N] [--warm-start]
 *                [--no-cache] [--cache-dir DIR] [--deadline-ms N]
 *                [--max-queue N] [--block-on-full] [--retries N]
 *                [--breaker-threshold N] [--strict]
 *                [--solver exact|multilevel] [--replicate]
 *                [--coarse-limit N]
 *
 *   --threads N           concurrent requests (default: pool size)
 *   --repeat N            global multiplier on every request's repeat
 *   --warm-start          enable family warm-start hints (see
 *                         CompileOptions::cacheWarmStart; changes
 *                         results on near-miss requests, off by
 *                         default)
 *   --no-cache            drop the cache entirely (baseline timing)
 *   --cache-dir D         use a disk tier at D (TAPACS_CACHE_DIR)
 *   --deadline-ms N       default per-attempt deadline for requests
 *                         without their own deadline_ms=; 0 = already
 *                         expired (deterministic degraded path),
 *                         negative = none (the default)
 *   --max-queue N         waiting-queue bound; submissions beyond it
 *                         are shed with RESOURCE_EXHAUSTED (0 =
 *                         unbounded)
 *   --block-on-full       block submission instead of shedding
 *                         (backpressure)
 *   --retries N           extra attempts after DEADLINE_EXCEEDED /
 *                         INTERNAL, with bounded exponential backoff
 *   --breaker-threshold N consecutive failures that open the circuit
 *                         breaker (0 = disabled)
 *   --solver S            override every request's level-1 engine
 *                         (exact | multilevel)
 *   --replicate           force replicate=1 on every request
 *   --coarse-limit N      override every request's coarse_limit
 *   --strict              exit 1 when any line was malformed or any
 *                         request did not produce a routable result
 *                         (default: exit 0 whenever every request got
 *                         a typed outcome)
 */

#include <cstdint>
#include <cstdio>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/compile_cache.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "common/units.hh"
#include "obs/metrics.hh"
#include "serve/manifest.hh"
#include "serve/service.hh"

using namespace tapacs;

namespace
{

struct CliOptions
{
    std::string manifest;
    int threads = 0;
    int repeat = 1;
    bool warmStart = false;
    bool noCache = false;
    std::string cacheDir;
    double deadlineMs = -1.0;
    int maxQueue = 0;
    bool blockOnFull = false;
    int retries = 0;
    int breakerThreshold = 0;
    bool strict = false;
    /** Level-1 engine override for every request ("" = per-request
     *  solver= keys / default). */
    std::string solver;
    /** Force replication on every request. */
    bool replicate = false;
    /** Coarsening-target override (0 = per-request / default). */
    int coarseLimit = 0;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: tapacs-batch MANIFEST [--threads N] [--repeat N] "
        "[--warm-start] [--no-cache] [--cache-dir DIR] "
        "[--deadline-ms N] [--max-queue N] [--block-on-full] "
        "[--retries N] [--breaker-threshold N] [--strict] "
        "[--solver exact|multilevel] [--replicate] "
        "[--coarse-limit N]\n");
    std::exit(2);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--threads")
            opt.threads = std::atoi(next().c_str());
        else if (arg == "--repeat")
            opt.repeat = std::atoi(next().c_str());
        else if (arg == "--warm-start")
            opt.warmStart = true;
        else if (arg == "--no-cache")
            opt.noCache = true;
        else if (arg == "--cache-dir")
            opt.cacheDir = next();
        else if (arg == "--deadline-ms")
            opt.deadlineMs = std::atof(next().c_str());
        else if (arg == "--max-queue")
            opt.maxQueue = std::atoi(next().c_str());
        else if (arg == "--block-on-full")
            opt.blockOnFull = true;
        else if (arg == "--retries")
            opt.retries = std::atoi(next().c_str());
        else if (arg == "--breaker-threshold")
            opt.breakerThreshold = std::atoi(next().c_str());
        else if (arg == "--strict")
            opt.strict = true;
        else if (arg == "--solver") {
            opt.solver = next();
            if (opt.solver != "exact" && opt.solver != "multilevel") {
                std::fprintf(stderr,
                             "--solver must be exact|multilevel\n");
                std::exit(2);
            }
        } else if (arg == "--replicate")
            opt.replicate = true;
        else if (arg == "--coarse-limit") {
            opt.coarseLimit = std::atoi(next().c_str());
            if (opt.coarseLimit < 2) {
                std::fprintf(stderr, "--coarse-limit must be >= 2\n");
                std::exit(2);
            }
        } else if (arg == "--help" || arg == "-h")
            usage();
        else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage();
        } else if (opt.manifest.empty()) {
            opt.manifest = arg;
        } else {
            usage();
        }
    }
    if (opt.manifest.empty())
        usage();
    // Mirror the manifest's per-request repeat cap so the combined
    // repeat (computed in 64-bit below) can never overflow.
    if (opt.repeat < 1 || opt.repeat > 10'000) {
        std::fprintf(stderr, "--repeat must be in [1, 10000]\n");
        std::exit(2);
    }
    return opt;
}

const char *
statusLabel(const serve::ServeOutcome &o)
{
    if (o.status.ok())
        return o.degraded ? "degraded" : "ok";
    return toString(o.status.code());
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseArgs(argc, argv);

    std::ifstream in(opt.manifest);
    if (!in) {
        std::fprintf(stderr, "cannot open manifest '%s'\n",
                     opt.manifest.c_str());
        return 2;
    }
    std::ostringstream body;
    body << in.rdbuf();
    serve::ParsedManifest manifest = serve::parseManifest(body.str());
    for (const serve::ManifestDiagnostic &d : manifest.diagnostics)
        std::fprintf(stderr, "%s:%d: %s\n", opt.manifest.c_str(),
                     d.line, d.message.c_str());
    if (manifest.requests.empty()) {
        std::fprintf(stderr,
                     "manifest '%s' contains no usable requests\n",
                     opt.manifest.c_str());
        return opt.strict || manifest.diagnostics.empty() ? 2 : 0;
    }

    cache::CompileCache *cc = nullptr;
    std::unique_ptr<cache::CacheStore> diskStore;
    std::unique_ptr<cache::CompileCache> diskCache;
    if (!opt.noCache) {
        if (!opt.cacheDir.empty()) {
            cache::CacheStore::Options sopt;
            sopt.directory = opt.cacheDir;
            diskStore =
                std::make_unique<cache::CacheStore>(std::move(sopt));
            diskCache = std::make_unique<cache::CompileCache>(*diskStore);
            cc = diskCache.get();
        } else {
            cc = &cache::CompileCache::global();
        }
    }

    serve::ServeOptions sopt;
    sopt.threads =
        opt.threads > 0 ? opt.threads : ThreadPool::defaultThreadCount();
    sopt.maxQueue = opt.maxQueue;
    sopt.blockOnFull = opt.blockOnFull;
    sopt.defaultDeadlineSeconds =
        opt.deadlineMs < 0.0 ? -1.0 : opt.deadlineMs / 1000.0;
    sopt.maxRetries = opt.retries;
    sopt.breakerThreshold = opt.breakerThreshold;
    sopt.warmStart = opt.warmStart;
    sopt.cache = cc;

    // CLI-level solver overrides apply to every manifest request.
    for (serve::Request &req : manifest.requests) {
        if (opt.solver == "exact")
            req.solver = L1Backend::Exact;
        else if (opt.solver == "multilevel")
            req.solver = L1Backend::Multilevel;
        if (opt.replicate)
            req.replicate = true;
        if (opt.coarseLimit > 0)
            req.coarseLimit = opt.coarseLimit;
    }

    // One flat execution list: per-request repeats x the global
    // multiplier, in manifest order.
    std::vector<serve::Request> executions;
    for (const serve::Request &req : manifest.requests) {
        const std::int64_t copies =
            static_cast<std::int64_t>(req.repeat) * opt.repeat;
        for (std::int64_t r = 0; r < copies; ++r)
            executions.push_back(req);
    }

    inform("tapacs-batch: %zu request(s) (%zu execution(s)), %d "
           "thread(s), cache %s",
           manifest.requests.size(), executions.size(), sopt.threads,
           cc == nullptr ? "off"
                         : (cc->store().directory().empty()
                                ? "memory"
                                : cc->store().directory().c_str()));

    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    serve::CompileService service(sopt);
    // Shed submissions still get a typed row in the final table.
    std::vector<std::pair<std::size_t, serve::ServeOutcome>> shed;
    std::vector<char> admitted(executions.size(), 0);
    for (std::size_t i = 0; i < executions.size(); ++i) {
        const Status st = service.submit(executions[i]);
        if (st.ok()) {
            admitted[i] = 1;
        } else {
            serve::ServeOutcome out;
            out.name = executions[i].name;
            out.status = st;
            out.failureReason = st.message();
            shed.emplace_back(i, std::move(out));
        }
    }
    const std::vector<serve::ServeOutcome> drained = service.finish();
    const double wall =
        std::chrono::duration<double>(clock::now() - t0).count();

    // Re-interleave drained outcomes with shed ones in submission
    // order.
    std::vector<serve::ServeOutcome> outcomes(executions.size());
    std::size_t d = 0;
    for (std::size_t i = 0; i < executions.size(); ++i) {
        if (admitted[i])
            outcomes[i] = drained[d++];
    }
    for (auto &s : shed)
        outcomes[s.first] = std::move(s.second);

    std::printf("%-20s %-18s %6s %9s %12s %14s %12s\n", "request",
                "status", "tasks", "seconds", "fmax", "cut", "sim");
    int unrouted = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const serve::ServeOutcome &o = outcomes[i];
        if (!o.routable)
            ++unrouted;
        std::printf("%-20s %-18s %6d %9.3f %12s %14s %12s\n",
                    o.name.c_str(), statusLabel(o), o.tasks, o.seconds,
                    o.routable ? formatFrequency(o.fmax).c_str() : "-",
                    o.routable
                        ? formatBytes(o.cutTrafficBytes).c_str()
                        : o.failureReason.c_str(),
                    o.simulated ? formatSeconds(o.simMakespan).c_str()
                                : "-");
    }
    std::printf("\n%zu execution(s) in %.3fs wall\n", outcomes.size(),
                wall);

    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    const obs::MetricsSnapshot serveMetrics =
        snap.filterPrefix("tapacs.serve.");
    if (!serveMetrics.counters.empty())
        std::printf("\n%s", serveMetrics.renderTable().c_str());
    const obs::MetricsSnapshot cacheMetrics =
        snap.filterPrefix("tapacs.cache.");
    if (!cacheMetrics.counters.empty() || !cacheMetrics.gauges.empty()) {
        const std::int64_t hits =
            cacheMetrics.hasCounter("tapacs.cache.hits")
                ? cacheMetrics.counterValue("tapacs.cache.hits")
                : 0;
        const std::int64_t misses =
            cacheMetrics.hasCounter("tapacs.cache.misses")
                ? cacheMetrics.counterValue("tapacs.cache.misses")
                : 0;
        std::printf("\n%s", cacheMetrics.renderTable().c_str());
        if (hits + misses > 0) {
            std::printf("cache hit rate: %.1f%% (%lld/%lld)\n",
                        100.0 * static_cast<double>(hits) /
                            static_cast<double>(hits + misses),
                        (long long)hits, (long long)(hits + misses));
        }
    }

    if (opt.strict && (unrouted > 0 || !manifest.clean()))
        return 1;
    return 0;
}
