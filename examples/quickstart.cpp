/**
 * @file
 * Quickstart: compile and simulate a small dataflow design.
 *
 * Builds a four-task producer -> worker x2 -> consumer pipeline,
 * synthesizes it, compiles it for a 2-FPGA ring with TAPA-CS, and
 * runs the dataflow simulator — the whole public API in ~100 lines.
 *
 * Run:  ./quickstart
 */

#include <cstdio>

#include "apps/app_design.hh"
#include "compiler/compiler.hh"
#include "sim/dataflow_sim.hh"

using namespace tapacs;

int
main()
{
    // --- Step 1: describe the task graph -----------------------------
    TaskGraph g("quickstart");

    WorkProfile producer_work;
    producer_work.computeOps = 4.0e9;
    producer_work.opsPerCycle = 16.0;
    producer_work.memReadBytes = 1.0e9; // 1 GB streamed from HBM
    producer_work.memPortWidthBits = 512;
    producer_work.memChannels = 8;
    producer_work.numBlocks = 64;
    const VertexId producer =
        g.addVertex("producer", ResourceVector{}, producer_work);

    WorkProfile worker_work;
    worker_work.computeOps = 40.0e9;
    worker_work.opsPerCycle = 64.0;
    worker_work.numBlocks = 64;
    const VertexId worker0 =
        g.addVertex("worker0", ResourceVector{}, worker_work);
    const VertexId worker1 =
        g.addVertex("worker1", ResourceVector{}, worker_work);

    WorkProfile consumer_work;
    consumer_work.computeOps = 2.0e9;
    consumer_work.opsPerCycle = 16.0;
    consumer_work.memWriteBytes = 0.5e9;
    consumer_work.memPortWidthBits = 512;
    consumer_work.memChannels = 4;
    consumer_work.numBlocks = 64;
    const VertexId consumer =
        g.addVertex("consumer", ResourceVector{}, consumer_work);

    g.addEdge(producer, worker0, 512, 0.5e9);
    g.addEdge(producer, worker1, 512, 0.5e9);
    g.addEdge(worker0, consumer, 256, 0.25e9);
    g.addEdge(worker1, consumer, 256, 0.25e9);

    // --- Step 2: describe what HLS would synthesize ------------------
    std::vector<hls::TaskIr> tasks(4);
    tasks[0].name = "producer";
    tasks[0].intAluUnits = 16;
    for (int c = 0; c < 8; ++c)
        tasks[0].addMemPort("m" + std::to_string(c), 512, 8_KiB);

    for (int w = 0; w < 2; ++w) {
        hls::TaskIr &ir = tasks[1 + w];
        ir.name = "worker" + std::to_string(w);
        ir.fp32AddUnits = 32;
        ir.fp32MulUnits = 32;
        ir.localBufferBytes = 256_KiB;
        ir.preferUram = true;
        ir.bufferBanks = 16;
    }

    tasks[3].name = "consumer";
    tasks[3].intAluUnits = 16;
    for (int c = 0; c < 4; ++c)
        tasks[3].addMemPort("m" + std::to_string(c), 512, 8_KiB);

    // --- Steps 3-7: compile for a 2-FPGA U55C ring -------------------
    Cluster cluster = makePaperTestbed(2);
    CompileOptions options;
    options.mode = CompileMode::TapaCs;
    options.numFpgas = 2;

    CompileResult result = compileProgram(g, tasks, cluster, options);
    if (!result.routable) {
        std::printf("compilation failed: %s\n",
                    result.failureReason.c_str());
        return 1;
    }

    std::printf("design frequency: %s\n",
                formatFrequency(result.fmax).c_str());
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        std::printf("  %-10s -> FPGA %d, slot (col %d, row %d)\n",
                    g.vertex(v).name.c_str(), result.partition.deviceOf[v],
                    result.placement.slotOf[v].col,
                    result.placement.slotOf[v].row);
    }
    std::printf("floorplanning took %.2fs (L1) + %.2fs (L2)\n",
                result.l1Seconds, result.l2Seconds);

    // --- Simulate one run --------------------------------------------
    sim::SimResult run = sim::simulate(g, cluster, result.partition,
                                       result.binding, result.pipeline,
                                       result.deviceFmax);
    std::printf("end-to-end latency: %s\n",
                formatSeconds(run.makespan).c_str());
    for (DeviceId d = 0; d < cluster.numDevices(); ++d) {
        std::printf("  FPGA %d compute utilization: %.1f%%\n", d,
                    run.deviceUtilization(d) * 100.0);
    }
    return 0;
}
