/**
 * @file
 * Example: compute-to-communication trade-offs when scaling out.
 *
 * Sweeps the Dilate stencil from 1 to 4 FPGAs at a memory-bound
 * (64 iterations) and a compute-bound (512 iterations) operating
 * point and prints latency, speed-up and per-device idle time —
 * showing the paper's section-5.2 effect: multi-FPGA gains shrink as
 * the inter-FPGA transfer volume grows and devices serialize.
 *
 * Run:  ./stencil_scaling
 */

#include <cstdio>

#include "apps/stencil.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"
#include "sim/dataflow_sim.hh"

using namespace tapacs;

int
main()
{
    for (int iters : {64, 512}) {
        TextTable t({"FPGAs", "PEs", "HBM width", "Fmax", "Latency",
                     "Speedup", "Mean device busy%"});
        double baseline = 0.0;
        for (int f = 1; f <= 4; ++f) {
            apps::StencilConfig cfg = apps::StencilConfig::scaled(iters, f);
            apps::AppDesign app = apps::buildStencil(cfg);
            Cluster cluster = makePaperTestbed(f);
            CompileOptions opt;
            opt.mode = f == 1 ? CompileMode::TapaSingle
                              : CompileMode::TapaCs;
            opt.numFpgas = f;
            CompileResult r =
                compileProgram(app.graph, app.tasks, cluster, opt);
            if (!r.routable) {
                t.addRow({strprintf("%d", f), "-", "-", "-", "-", "-",
                          "unroutable"});
                continue;
            }
            sim::SimResult run =
                sim::simulate(app.graph, cluster, r.partition, r.binding,
                              r.pipeline, r.deviceFmax);
            if (f == 1)
                baseline = run.makespan;
            double busy = 0.0;
            for (int d = 0; d < f; ++d)
                busy += run.deviceUtilization(d);
            busy /= f;
            t.addRow({strprintf("%d", f), strprintf("%d", cfg.totalPes),
                      strprintf("%d b", cfg.hbmPortWidthBits),
                      formatFrequency(r.fmax),
                      formatSeconds(run.makespan),
                      strprintf("%.2fx", baseline / run.makespan),
                      strprintf("%.0f%%", busy * 100.0)});
        }
        t.setTitle(strprintf("Dilate stencil, 4096x4096, %d iterations",
                             iters));
        t.print();
        std::printf("\n");
    }
    std::printf("64 iterations scale well (small hand-offs); 512 "
                "iterations leave devices idle behind %s hand-offs "
                "per boundary (paper Table 4).\n",
                formatBytes(apps::stencilInterFpgaBytes(
                                apps::StencilConfig::scaled(512, 2)))
                    .c_str());
    return 0;
}
