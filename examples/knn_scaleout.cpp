/**
 * @file
 * Example: scale-out is not only for designs that don't fit.
 *
 * Recreates the paper's section-3 motivating example with the KNN
 * accelerator:
 *  1. the conservative 256-bit / 32 KiB configuration routes on one
 *     FPGA but cannot saturate the HBM banks;
 *  2. the optimal 512-bit / 128 KiB configuration does NOT fit one
 *     device (36 blue modules need more memory channels than a U55C
 *     exposes);
 *  3. TAPA-CS spreads the optimal configuration over two FPGAs and
 *     beats the single-device design on both clock and latency.
 *
 * Run:  ./knn_scaleout
 */

#include <cstdio>

#include "apps/knn.hh"
#include "compiler/compiler.hh"
#include "sim/dataflow_sim.hh"

using namespace tapacs;

namespace
{

void
report(const char *label, const CompileResult &r, Seconds latency)
{
    if (!r.routable) {
        std::printf("%-28s does not route: %s\n", label,
                    r.failureReason.c_str());
        return;
    }
    std::printf("%-28s %s, latency %s\n", label,
                formatFrequency(r.fmax).c_str(),
                formatSeconds(latency).c_str());
}

} // namespace

int
main()
{
    const std::int64_t n = 4'000'000;
    const int d = 2;

    // 1. Conservative single-FPGA configuration (what the paper's
    //    baseline ships): 13 blue modules, 256-bit ports.
    {
        apps::AppDesign app =
            apps::buildKnn(apps::KnnConfig::scaled(n, d, 1));
        Cluster cluster = makePaperTestbed(1);
        CompileOptions opt;
        opt.mode = CompileMode::TapaSingle;
        CompileResult r =
            compileProgram(app.graph, app.tasks, cluster, opt);
        Seconds latency = 0.0;
        if (r.routable) {
            latency = sim::simulate(app.graph, cluster, r.partition,
                                    r.binding, r.pipeline, r.deviceFmax)
                          .makespan;
        }
        report("KNN 256b/32KiB on 1 FPGA:", r, latency);
    }

    // 2. The optimal configuration on a single device: fails.
    {
        apps::AppDesign app =
            apps::buildKnn(apps::KnnConfig::scaled(n, d, 2));
        Cluster cluster = makePaperTestbed(1);
        CompileOptions opt;
        opt.mode = CompileMode::TapaSingle;
        CompileResult r =
            compileProgram(app.graph, app.tasks, cluster, opt);
        report("KNN 512b/128KiB on 1 FPGA:", r, 0.0);
    }

    // 3. The optimal configuration across two FPGAs: routes and wins.
    {
        apps::AppDesign app =
            apps::buildKnn(apps::KnnConfig::scaled(n, d, 2));
        Cluster cluster = makePaperTestbed(2);
        CompileOptions opt;
        opt.mode = CompileMode::TapaCs;
        opt.numFpgas = 2;
        CompileResult r =
            compileProgram(app.graph, app.tasks, cluster, opt);
        Seconds latency = 0.0;
        if (r.routable) {
            latency = sim::simulate(app.graph, cluster, r.partition,
                                    r.binding, r.pipeline, r.deviceFmax)
                          .makespan;
        }
        report("KNN 512b/128KiB on 2 FPGAs:", r, latency);
        if (r.routable) {
            std::printf("\ninter-FPGA traffic: %s (depends only on K, "
                        "not N or D)\n",
                        formatBytes(r.cutTrafficBytes).c_str());
            std::printf("paper's conclusion: multi-FPGA is often faster "
                        "even when one FPGA *could* fit the design.\n");
        }
    }
    return 0;
}
