/**
 * @file
 * Example: topology-aware partitioning.
 *
 * Builds one PageRank design and compiles it for 4-FPGA clusters
 * wired as a chain, ring, star, mesh and hypercube, printing how the
 * level-1 ILP adapts its module-to-FPGA mapping (paper section 4.3:
 * the dist() function changes with the wiring; eq. 3 for chains, the
 * min-wrap form for rings, BFS hops in general).
 *
 * Run:  ./topology_explorer
 */

#include <cstdio>

#include "apps/pagerank.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "compiler/compiler.hh"
#include "sim/dataflow_sim.hh"

using namespace tapacs;

int
main()
{
    const apps::GraphDataset &ds = apps::pagerankDataset("web-Google");

    TextTable t({"Topology", "Diameter", "eq.2 cost", "Cut bytes",
                 "Fmax", "Latency"});
    for (TopologyKind kind :
         {TopologyKind::Chain, TopologyKind::Ring, TopologyKind::Star,
          TopologyKind::Mesh2D, TopologyKind::Hypercube,
          TopologyKind::FullyConnected}) {
        apps::AppDesign app =
            apps::buildPageRank(apps::PageRankConfig::scaled(ds, 4));
        Topology topo(kind, 4);
        Cluster cluster(makeU55C(), topo);
        CompileOptions opt;
        opt.mode = CompileMode::TapaCs;
        opt.numFpgas = 4;
        CompileResult r =
            compileProgram(app.graph, app.tasks, cluster, opt);
        if (!r.routable) {
            t.addRow({toString(kind), strprintf("%d", topo.diameter()),
                      "-", "-", "-", "unroutable"});
            continue;
        }
        sim::SimResult run =
            sim::simulate(app.graph, cluster, r.partition, r.binding,
                          r.pipeline, r.deviceFmax);
        t.addRow({toString(kind), strprintf("%d", topo.diameter()),
                  strprintf("%.3g",
                            interFpgaCost(app.graph, cluster, r.partition)),
                  formatBytes(r.cutTrafficBytes),
                  formatFrequency(r.fmax),
                  formatSeconds(run.makespan).c_str()});
    }
    t.setTitle("PageRank (web-Google) on 4 FPGAs across topologies");
    t.print();
    std::printf("\nthe partitioner reads dist() from the topology: "
                "identical designs map differently on each wiring.\n");
    return 0;
}
