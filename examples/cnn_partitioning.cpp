/**
 * @file
 * Example: inspecting a floorplan.
 *
 * Compiles the 13x12 AutoSA systolic array for two FPGAs and prints
 * the full floorplan — which FPGA and slot every module landed in,
 * where the partition cut fell (it should slice the grid between PE
 * columns), the HBM channel bindings and the interconnect pipelining
 * statistics.
 *
 * Run:  ./cnn_partitioning
 */

#include <cstdio>

#include "apps/cnn.hh"
#include "common/logging.hh"
#include "compiler/compiler.hh"

using namespace tapacs;

int
main()
{
    apps::AppDesign app = apps::buildCnn(apps::CnnConfig::scaled(2));
    Cluster cluster = makePaperTestbed(2);
    CompileOptions opt;
    opt.mode = CompileMode::TapaCs;
    opt.numFpgas = 2;
    CompileResult r = compileProgram(app.graph, app.tasks, cluster, opt);
    if (!r.routable) {
        std::printf("compilation failed: %s\n", r.failureReason.c_str());
        return 1;
    }

    std::printf("CNN 13x12 on 2 FPGAs: %s, L1 %.2fs + L2 %.2fs\n\n",
                formatFrequency(r.fmax).c_str(), r.l1Seconds,
                r.l2Seconds);

    // Which PE columns ended up on which device?
    std::printf("PE grid column -> device mapping:\n  ");
    for (int c = 0; c < 12; ++c) {
        int on_dev1 = 0;
        for (int row = 0; row < 13; ++row) {
            const VertexId v =
                app.graph.findVertex(strprintf("pe_%d_%d", row, c));
            if (v >= 0 && r.partition.deviceOf[v] == 1)
                ++on_dev1;
        }
        std::printf("col%-2d:%s ", c,
                    on_dev1 > 6 ? "F1" : (on_dev1 > 0 ? "mix" : "F0"));
    }
    std::printf("\n\n");

    // Cut statistics.
    std::printf("cut: %d FIFOs, %s of traffic (Table 7 for 13x12: "
                "6.42 MB)\n",
                cutEdgeCount(app.graph, r.partition),
                formatBytes(r.cutTrafficBytes).c_str());

    // Slot occupancy per device.
    for (DeviceId d = 0; d < 2; ++d) {
        std::printf("\nFPGA %d slot occupancy (modules per slot):\n", d);
        const DeviceModel &dev = cluster.device();
        std::vector<int> count(dev.numSlots(), 0);
        for (VertexId v = 0; v < app.graph.numVertices(); ++v) {
            if (r.partition.deviceOf[v] == d) {
                const SlotCoord &s = r.placement.slotOf[v];
                ++count[s.row * dev.cols() + s.col];
            }
        }
        for (int row = dev.rows() - 1; row >= 0; --row) {
            std::printf("  row %d: ", row);
            for (int col = 0; col < dev.cols(); ++col)
                std::printf("[%3d] ", count[row * dev.cols() + col]);
            std::printf(row == 0 ? " <- HBM channels here\n" : "\n");
        }
    }

    // Pipelining summary.
    int pipelined = 0, balanced = 0;
    for (const auto &ep : r.pipeline.edges) {
        pipelined += ep.stages > 0 ? 1 : 0;
        balanced += ep.balanceDepth > 0 ? 1 : 0;
    }
    std::printf("\npipelining: %d FIFOs registered (%.0f kbit of "
                "registers), %d balancing FIFOs (%.0f kbit)\n",
                pipelined, r.pipeline.totalRegisterBits / 1000.0,
                balanced, r.pipeline.totalBalanceBits / 1000.0);
    return 0;
}
